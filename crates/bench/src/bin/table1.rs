//! Table 1 reproduction: parallel peeling rounds on `G^4_{n,cn}` with k=2.
//!
//! Paper parameters: n = 10000·2^i for i=0..8, c ∈ {0.70, 0.75, 0.80, 0.85},
//! 1000 trials. Default here: n up to 640000 and 100 trials (≈ 1 minute on a
//! small machine); pass `--full` for the paper's exact grid.
//!
//! Expected shape: below the threshold c*_{2,4} ≈ 0.772 all trials succeed
//! and rounds grow like log log n (≈13 at c=0.70, ≈23.5 at c=0.75); above
//! it all trials fail and rounds grow like log n (+~2 per doubling).

use rayon::prelude::*;

use peel_bench::{mean, row, Args};
use peel_core::sequential::peel_rounds_serial;
use peel_graph::models::Gnm;
use peel_graph::rng::Xoshiro256StarStar;

fn main() {
    let args = Args::parse();
    if args.flag("help") {
        eprintln!(
            "table1 [--full] [--trials T] [--max-n N] [--seed S]\n\
             Reproduces Table 1 (rounds of parallel peeling, r=4, k=2)."
        );
        return;
    }
    let full = args.flag("full");
    let trials: u64 = args.get("trials", if full { 1000 } else { 100 });
    let max_n: usize = args.get("max-n", if full { 2_560_000 } else { 640_000 });
    let seed: u64 = args.get("seed", 20140623);
    let densities: [f64; 4] = [0.70, 0.75, 0.80, 0.85];
    let r = 4;
    let k = 2;

    println!("# Table 1: parallel peeling on G^4_(n,cn), k=2, {trials} trials");
    println!("# c*_2,4 = {:.5}", peel_analysis::c_star(2, 4).unwrap());
    let widths = [9usize, 7, 8, 7, 8, 7, 8, 7, 8];
    let mut header = vec!["n".to_string()];
    for c in densities {
        header.push(format!("c={c}"));
        header.push("rounds".to_string());
    }
    println!("{}", row(&header, &widths));

    let mut n = 10_000usize;
    while n <= max_n {
        let mut cells = vec![format!("{n}")];
        for &c in &densities {
            let results: Vec<(bool, u32)> = (0..trials)
                .into_par_iter()
                .map(|t| {
                    let mut rng =
                        Xoshiro256StarStar::new(seed ^ (n as u64) ^ c.to_bits() ^ (t << 32));
                    let g = Gnm::new(n, c, r).sample(&mut rng);
                    let out = peel_rounds_serial(&g, k);
                    (!out.success(), out.rounds)
                })
                .collect();
            let failed = results.iter().filter(|(f, _)| *f).count();
            let rounds = mean(&results.iter().map(|&(_, r)| r as f64).collect::<Vec<_>>());
            cells.push(format!("{failed}"));
            cells.push(format!("{rounds:.3}"));
        }
        println!("{}", row(&cells, &widths));
        n *= 2;
    }
    println!("# columns per density: failed trials (of {trials}), mean rounds");
}

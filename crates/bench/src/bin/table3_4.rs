//! Tables 3 & 4 reproduction: IBLT insert/recovery wall time, parallel
//! (rayon, substituting the paper's GPU) vs serial, at loads 0.75 (below
//! threshold → 100% recovery) and 0.83 (above → partial recovery).
//!
//! The paper uses 2^24 ≈ 16.8M cells; the default here is 2^21 (≈2M) so the
//! bin completes quickly on small machines — pass `--full` (or `--cells N`)
//! for the paper's size. Absolute times and speedup magnitudes depend on
//! core count (the paper had a 448-core GPU; this machine has
//! `rayon::current_num_threads()` workers); the *shape* to check is:
//!
//! * recovery speedup is largest below the threshold;
//! * above the threshold the parallel advantage shrinks (more rounds, and
//!   every round scans all cells while the serial baseline does less work);
//! * ~50% of cells recovered at load 0.83 with r=3, ~25% with r=4
//!   (matching the paper's "% recovered" column).

use std::time::Instant;

use peel_bench::{mean, row, Args};
use peel_graph::rng::Xoshiro256StarStar;
use peel_iblt::{AtomicIblt, Iblt, IbltConfig};
use rand::RngCore;

struct Measurement {
    gpu_recover: f64,
    frontier_recover: f64,
    serial_recover: f64,
    gpu_insert: f64,
    serial_insert: f64,
    pct_recovered: f64,
}

fn run_once(r: usize, cells: usize, load: f64, seed: u64) -> Measurement {
    let cfg = IbltConfig::with_total_cells(r, cells, seed);
    let items = (load * cfg.total_cells() as f64).round() as usize;
    let mut rng = Xoshiro256StarStar::new(seed ^ 0xabcdef);
    let keys: Vec<u64> = (0..items).map(|_| rng.next_u64()).collect();

    // Parallel insert.
    let atomic = AtomicIblt::new(cfg);
    let t0 = Instant::now();
    atomic.par_insert(&keys);
    let gpu_insert = t0.elapsed().as_secs_f64();

    // Second copy for the frontier-recovery measurement.
    let atomic2 = AtomicIblt::new(cfg);
    atomic2.par_insert(&keys);

    // Serial insert.
    let mut serial = Iblt::new(cfg);
    let t0 = Instant::now();
    for &k in &keys {
        serial.insert(k);
    }
    let serial_insert = t0.elapsed().as_secs_f64();

    // Parallel recovery, GPU-style dense scan (the paper's kernel).
    let t0 = Instant::now();
    let par_out = atomic.par_recover();
    let gpu_recover = t0.elapsed().as_secs_f64();

    // Parallel recovery, candidate-tracking variant (CPU adaptation).
    let t0 = Instant::now();
    let frontier_out = atomic2.par_recover_frontier();
    let frontier_recover = t0.elapsed().as_secs_f64();

    // Serial recovery.
    let t0 = Instant::now();
    let ser_out = serial.recover_destructive();
    let serial_recover = t0.elapsed().as_secs_f64();

    assert_eq!(par_out.positive.len(), ser_out.positive.len());
    assert_eq!(par_out.positive.len(), frontier_out.positive.len());
    let pct_recovered = 100.0 * par_out.positive.len() as f64 / items as f64;
    Measurement {
        gpu_recover,
        frontier_recover,
        serial_recover,
        gpu_insert,
        serial_insert,
        pct_recovered,
    }
}

fn main() {
    let args = Args::parse();
    if args.flag("help") {
        eprintln!(
            "table3_4 [--full] [--cells N] [--trials T] [--seed S]\n\
             Reproduces Tables 3 & 4 (IBLT parallel vs serial timings).\n\
             'Par' columns correspond to the paper's GPU columns (rayon\n\
             substitution; see DESIGN.md)."
        );
        return;
    }
    let full = args.flag("full");
    let cells: usize = args.get("cells", if full { 1 << 24 } else { 1 << 21 });
    let trials: u64 = args.get("trials", if full { 10 } else { 3 });
    let seed: u64 = args.get("seed", 34);

    println!(
        "# Tables 3 & 4: IBLT recovery, {} cells, {} trials, {} rayon threads",
        cells,
        trials,
        rayon::current_num_threads()
    );
    let widths = [4usize, 6, 11, 11, 11, 11, 11, 11, 9, 9];
    println!(
        "{}",
        row(
            &[
                "r".into(),
                "load".into(),
                "%recovered".into(),
                "scan rec s".into(),
                "cand rec s".into(),
                "ser rec s".into(),
                "par ins s".into(),
                "ser ins s".into(),
                "rec spd".into(),
                "ins spd".into(),
            ],
            &widths
        )
    );

    for r in [3usize, 4] {
        for load in [0.75f64, 0.83] {
            let ms: Vec<Measurement> = (0..trials)
                .map(|t| run_once(r, cells, load, seed ^ (t << 8) ^ ((r as u64) << 4)))
                .collect();
            let gr = mean(&ms.iter().map(|m| m.gpu_recover).collect::<Vec<_>>());
            let fr = mean(&ms.iter().map(|m| m.frontier_recover).collect::<Vec<_>>());
            let sr = mean(&ms.iter().map(|m| m.serial_recover).collect::<Vec<_>>());
            let gi = mean(&ms.iter().map(|m| m.gpu_insert).collect::<Vec<_>>());
            let si = mean(&ms.iter().map(|m| m.serial_insert).collect::<Vec<_>>());
            let pct = mean(&ms.iter().map(|m| m.pct_recovered).collect::<Vec<_>>());
            println!(
                "{}",
                row(
                    &[
                        format!("{r}"),
                        format!("{load}"),
                        format!("{pct:.1}%"),
                        format!("{gr:.3}"),
                        format!("{fr:.3}"),
                        format!("{sr:.3}"),
                        format!("{gi:.3}"),
                        format!("{si:.3}"),
                        format!("{:.2}x", sr / fr),
                        format!("{:.2}x", si / gi),
                    ],
                    &widths
                )
            );
        }
    }
    println!("# 'scan rec' = paper's GPU kernel (dense per-round scan); 'cand rec' = candidate-");
    println!("# tracking CPU adaptation; 'rec spd' = serial / candidate-tracking parallel.");
    println!("# paper (Tesla C2070 vs 1 CPU core): rec spd ≈ 20x below / ≈7-9x above threshold;");
    println!("# here speedups are bounded by the rayon thread count.");
}

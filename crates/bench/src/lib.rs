//! # peel-bench — experiment harness for the SPAA 2014 reproduction
//!
//! One binary per table/figure of the paper:
//!
//! | Binary | Reproduces | Command |
//! |---|---|---|
//! | `table1` | Table 1 — rounds vs n below/above threshold (r=4, k=2) | `cargo run --release -p peel-bench --bin table1` |
//! | `table2` | Table 2 — recurrence prediction vs experiment (n=10^6) | `cargo run --release -p peel-bench --bin table2` |
//! | `table3_4` | Tables 3 & 4 — parallel vs serial IBLT wall time | `cargo run --release -p peel-bench --bin table3_4` |
//! | `table5` | Table 5 — subrounds with subtables (r=4, k=2) | `cargo run --release -p peel-bench --bin table5` |
//! | `table6` | Table 6 — subtable recurrence vs experiment | `cargo run --release -p peel-bench --bin table6` |
//! | `fig1` | Figure 1 — β_i trajectories near the threshold + Theorem 5 plateau sweep | `cargo run --release -p peel-bench --bin fig1` |
//!
//! Every binary accepts `--full` to switch from laptop-scale defaults to
//! the paper's exact parameters, plus individual overrides (`--trials`,
//! `--n`, `--cells`, …); run with `--help` for the list. Criterion benches
//! (`engines_bench`, `iblt_bench`, `scaling_bench`) cover timing
//! comparisons and the ablations listed in DESIGN.md.

#![warn(missing_docs)]

use std::collections::HashMap;

/// Minimal `--key value` / `--flag` argument parser (std-only by design —
/// see DESIGN.md's dependency policy).
#[derive(Debug, Clone)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse `std::env::args()`.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)] // arg parsing, not a generic collection conversion
    pub fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = iter.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        values.insert(name.to_string(), iter.next().unwrap());
                    }
                    _ => flags.push(name.to_string()),
                }
            }
        }
        Args { values, flags }
    }

    /// Boolean flag presence (`--full`, `--help`, …).
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Typed value with default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.values
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Render one row of a fixed-width table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::from_iter(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_values_and_flags() {
        let a = args("--trials 50 --full --n 1000000");
        assert_eq!(a.get("trials", 0usize), 50);
        assert_eq!(a.get("n", 0usize), 1_000_000);
        assert!(a.flag("full"));
        assert!(!a.flag("help"));
    }

    #[test]
    fn defaults_apply() {
        let a = args("");
        assert_eq!(a.get("trials", 7usize), 7);
        assert!((a.get("c", 0.7f64) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn adjacent_flags_dont_eat_values() {
        let a = args("--full --trials 3");
        assert!(a.flag("full"));
        assert_eq!(a.get("trials", 0usize), 3);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((stddev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
    }

    #[test]
    fn row_formats_right_aligned() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}

//! Service-layer timing: batched ingest throughput through the shard
//! router + worker pool, and end-to-end reconciliation latency
//! (snapshot → subtract → subround parallel recovery), in-process (no
//! TCP — `bench_json` measures the wire path; this isolates the service
//! core).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use peel_graph::rng::Xoshiro256StarStar;
use peel_service::{build_shard_digests, PeelService, ServiceConfig};
use rand::RngCore;

fn keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

fn cfg(shards: u32) -> ServiceConfig {
    ServiceConfig {
        batch_size: 1024,
        queue_depth: 64,
        ..ServiceConfig::for_diff_budget(shards, 2_048)
    }
}

fn bench_ingest(c: &mut Criterion) {
    const N: usize = 200_000;
    let ks = keys(N, 42);
    let mut group = c.benchmark_group("service_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    for shards in [1u32, 4, 8] {
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| {
                let svc = PeelService::start(cfg(shards));
                svc.insert(&ks);
                svc.flush();
                svc
            })
        });
    }
    group.finish();
}

fn bench_reconcile(c: &mut Criterion) {
    const N: usize = 100_000;
    const DIFF: usize = 1_000;
    let mut group = c.benchmark_group("service_reconcile");
    group.sample_size(10);
    group.throughput(Throughput::Elements(DIFF as u64));
    for shards in [1u32, 4, 8] {
        // A server set and a peer set differing in DIFF keys.
        let server_set = keys(N, 7);
        let mut peer_set = server_set[..N - DIFF / 2].to_vec();
        peer_set.extend(keys(DIFF / 2, 999));

        let svc = PeelService::start(cfg(shards));
        svc.insert(&server_set);
        svc.flush();
        let hello = svc.hello();
        let digests = build_shard_digests(
            &peer_set,
            hello.shards,
            hello.router_seed,
            hello.base_config,
        );

        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| {
                let mut found = 0usize;
                for (i, d) in digests.iter().enumerate() {
                    let diff = svc.reconcile_shard(i as u32, d).unwrap();
                    assert!(diff.complete);
                    found += diff.only_local.len() + diff.only_remote.len();
                }
                assert_eq!(found, DIFF);
                found
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_reconcile);
criterion_main!(benches);

//! Engine comparison bench (ablation: dense scan vs frontier vs serial
//! baselines vs subtable discipline).
//!
//! Fixed workload: r=4, k=2, c=0.70 (below threshold — the regime peeling
//! data structures are operated in). The dense engine mirrors the paper's
//! GPU kernel (O(n+m) work per round); the frontier engine is the
//! work-efficient CPU variant; `peel_greedy` is the serial baseline of the
//! paper's timing tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use peel_core::parallel::{peel_parallel, ParallelOpts, Strategy};
use peel_core::sequential::{peel_greedy, peel_rounds_serial};
use peel_core::subtable::{peel_subtables, SubtableOpts};
use peel_graph::models::{Gnm, Partitioned};
use peel_graph::rng::Xoshiro256StarStar;
use peel_graph::Hypergraph;

fn workload(n: usize) -> Hypergraph {
    Gnm::new(n, 0.70, 4).sample(&mut Xoshiro256StarStar::new(42))
}

fn partitioned_workload(n: usize) -> Hypergraph {
    Partitioned::new(n, 0.70, 4).sample(&mut Xoshiro256StarStar::new(42))
}

fn bench_engines(c: &mut Criterion) {
    let n = 200_000usize;
    let g = workload(n);
    let gp = partitioned_workload(n);

    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function(BenchmarkId::new("greedy_serial", n), |b| {
        b.iter(|| peel_greedy(&g, 2))
    });
    group.bench_function(BenchmarkId::new("rounds_serial", n), |b| {
        b.iter(|| peel_rounds_serial(&g, 2))
    });
    group.bench_function(BenchmarkId::new("parallel_dense", n), |b| {
        let opts = ParallelOpts {
            strategy: Strategy::Dense,
            ..Default::default()
        };
        b.iter(|| peel_parallel(&g, 2, &opts))
    });
    group.bench_function(BenchmarkId::new("parallel_frontier", n), |b| {
        let opts = ParallelOpts::default();
        b.iter(|| peel_parallel(&g, 2, &opts))
    });
    group.bench_function(BenchmarkId::new("subtable", n), |b| {
        b.iter(|| peel_subtables(&gp, 2, &SubtableOpts::default()))
    });
    group.finish();
}

fn bench_density_sweep(c: &mut Criterion) {
    // Above vs below threshold: above-threshold peeling runs Ω(log n)
    // rounds, so the dense engine's per-round full scan hurts most there.
    let n = 100_000usize;
    let mut group = c.benchmark_group("density_sweep");
    group.sample_size(10);
    for density in [0.5f64, 0.7, 0.8, 0.85] {
        let g = Gnm::new(n, density, 4).sample(&mut Xoshiro256StarStar::new(7));
        group.bench_function(BenchmarkId::new("frontier", format!("c={density}")), |b| {
            b.iter(|| peel_parallel(&g, 2, &ParallelOpts::default()))
        });
        group.bench_function(BenchmarkId::new("dense", format!("c={density}")), |b| {
            let opts = ParallelOpts {
                strategy: Strategy::Dense,
                ..Default::default()
            };
            b.iter(|| peel_parallel(&g, 2, &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_density_sweep);
criterion_main!(benches);

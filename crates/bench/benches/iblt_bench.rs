//! IBLT timing bench — the Criterion counterpart of Tables 3 & 4, plus the
//! atomic-vs-locked cell ablation from DESIGN.md.
//!
//! Loads 0.75 (full recovery) and 0.83 (partial recovery) at r=3, matching
//! Table 3's rows; the table3_4 binary prints the paper-style summary,
//! while this bench gives Criterion-quality timing distributions.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use peel_graph::rng::Xoshiro256StarStar;
use peel_iblt::locked::LockedIblt;
use peel_iblt::{AtomicIblt, Iblt, IbltConfig};
use rand::RngCore;

const CELLS: usize = 1 << 18; // 262k cells: seconds-scale bench iterations

fn keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

fn bench_insert(c: &mut Criterion) {
    let cfg = IbltConfig::with_total_cells(3, CELLS, 11);
    let items = (0.75 * cfg.total_cells() as f64) as usize;
    let ks = keys(items, 99);

    let mut group = c.benchmark_group("iblt_insert");
    group.sample_size(10);
    group.throughput(Throughput::Elements(items as u64));
    group.bench_function(BenchmarkId::new("serial", items), |b| {
        b.iter_batched(
            || Iblt::new(cfg),
            |mut t| {
                for &k in &ks {
                    t.insert(k);
                }
                t
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("atomic_parallel", items), |b| {
        b.iter_batched(
            || AtomicIblt::new(cfg),
            |t| {
                t.par_insert(&ks);
                t
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("locked_parallel", items), |b| {
        b.iter_batched(
            || LockedIblt::new(cfg),
            |t| {
                t.par_insert(&ks);
                t
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_recover(c: &mut Criterion) {
    let mut group = c.benchmark_group("iblt_recover");
    group.sample_size(10);
    for load in [0.75f64, 0.83] {
        let cfg = IbltConfig::with_total_cells(3, CELLS, 12);
        let items = (load * cfg.total_cells() as f64) as usize;
        let ks = keys(items, 101);
        let reference = {
            let t = AtomicIblt::new(cfg);
            t.par_insert(&ks);
            t.to_serial()
        };

        group.throughput(Throughput::Elements(items as u64));
        group.bench_function(BenchmarkId::new("serial", format!("load={load}")), |b| {
            b.iter_batched(
                || reference.clone(),
                |mut t| t.recover_destructive(),
                BatchSize::LargeInput,
            )
        });
        group.bench_function(BenchmarkId::new("parallel", format!("load={load}")), |b| {
            b.iter_batched(
                || AtomicIblt::from_serial(&reference),
                |t| t.par_recover(),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_recover);
criterion_main!(benches);

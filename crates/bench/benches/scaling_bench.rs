//! Thread-scaling ablation: parallel peeling and parallel IBLT recovery
//! under rayon pools of 1, 2, … threads (up to the machine's cores).
//!
//! With one thread the parallel engines degrade to (slightly overheadier)
//! serial execution, so this bench quantifies both the parallel overhead
//! and the achievable speedup on this machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use peel_core::parallel::{peel_parallel, ParallelOpts};
use peel_graph::models::Gnm;
use peel_graph::rng::Xoshiro256StarStar;
use peel_iblt::{AtomicIblt, IbltConfig};
use rand::RngCore;

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut v = vec![1];
    let mut t = 2;
    while t <= max {
        v.push(t);
        t *= 2;
    }
    if *v.last().unwrap() != max {
        v.push(max);
    }
    v
}

fn bench_peel_scaling(c: &mut Criterion) {
    let g = Gnm::new(200_000, 0.70, 4).sample(&mut Xoshiro256StarStar::new(1));
    let mut group = c.benchmark_group("peel_scaling");
    group.sample_size(10);
    for threads in thread_counts() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        group.bench_function(BenchmarkId::new("frontier", threads), |b| {
            b.iter(|| pool.install(|| peel_parallel(&g, 2, &ParallelOpts::default())))
        });
    }
    group.finish();
}

fn bench_recover_scaling(c: &mut Criterion) {
    let cfg = IbltConfig::with_total_cells(3, 1 << 18, 5);
    let items = (0.75 * cfg.total_cells() as f64) as usize;
    let mut rng = Xoshiro256StarStar::new(2);
    let keys: Vec<u64> = (0..items).map(|_| rng.next_u64()).collect();
    let loaded = {
        let t = AtomicIblt::new(cfg);
        t.par_insert(&keys);
        t.to_serial()
    };

    let mut group = c.benchmark_group("iblt_recover_scaling");
    group.sample_size(10);
    for threads in thread_counts() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        group.bench_function(BenchmarkId::new("par_recover", threads), |b| {
            b.iter_batched(
                || AtomicIblt::from_serial(&loaded),
                |t| pool.install(|| t.par_recover()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_peel_scaling, bench_recover_scaling);
criterion_main!(benches);

//! Regression pins for [`Strategy::Adaptive`]'s per-round direction
//! decisions.
//!
//! The adaptive engine's mode sequence is a pure function of the trace
//! (frontier sizes and live-edge counts, which are round-identical across
//! every engine) and the switch coefficient α. Pinning the exact sequence
//! on fixed-seed graphs turns any accidental change to the heuristic — a
//! re-fit of [`ADAPTIVE_DENSE_ALPHA`], a refactor of the division-free
//! test, a cost-model drift in the kill phases that should have triggered
//! a re-fit — into a loud test failure instead of a silent perf
//! regression like the α = 8 mispredict at n = 4×10⁵, c = 0.70 that
//! motivated the current fit.

use peel_core::parallel::{adaptive_picks_dense, ADAPTIVE_DENSE_ALPHA};
use peel_core::{peel_rounds_serial, PeelOutcome};
use peel_graph::models::{Gnm, Partitioned};
use peel_graph::rng::Xoshiro256StarStar;
use peel_graph::Hypergraph;

/// Reconstruct the adaptive direction sequence from a trace: `'D'` =
/// dense edge scan, `'F'` = frontier propagation. `RoundStats` records
/// the frontier the round peeled; live edges start at `m` and shrink by
/// each round's `peeled_edges`.
fn mode_string(g: &Hypergraph, out: &PeelOutcome, alpha: u64) -> String {
    let (n, m, r) = (
        g.num_vertices() as u64,
        g.num_edges() as u64,
        g.arity() as u64,
    );
    let mut live = m;
    let mut s = String::new();
    for round in &out.trace {
        let dense = adaptive_picks_dense(round.peeled_vertices, n, m, r, live, alpha);
        s.push(if dense { 'D' } else { 'F' });
        live -= round.peeled_edges;
    }
    s
}

#[test]
fn pinned_mode_sequences_at_default_alpha() {
    // Each case pins the full decision string for one fixed-seed graph at
    // the shipped α. If a legitimate α re-fit changes these, re-pin them
    // from the test's own failure output — but only after `alpha_sweep`
    // confirms the new fit wins on the benched regimes.
    // (label, graph, k, peels-to-empty?, pinned decision string). The
    // c = 0.85 case sits above c*_{2,4} ≈ 0.772: the 2-core survives, and
    // the decision string covers the truncated cascade to fixpoint.
    let cases: [(&str, Hypergraph, u32, bool, &str); 3] = [
        (
            "gnm-50k-c0.70-r4-seed24",
            Gnm::new(50_000, 0.70, 4).sample(&mut Xoshiro256StarStar::new(24)),
            2,
            true,
            "FFFFFFFFFDDFF",
        ),
        (
            "gnm-50k-c0.85-r4-seed24",
            Gnm::new(50_000, 0.85, 4).sample(&mut Xoshiro256StarStar::new(24)),
            2,
            false,
            "FFFFFFFFFFFF",
        ),
        (
            "part-30k-c0.75-r3-seed7",
            Partitioned::new(30_000, 0.75, 3).sample(&mut Xoshiro256StarStar::new(7)),
            2,
            true,
            "DFFFFFFFFFFFFFFF",
        ),
    ];
    for (label, g, k, empties, expected) in cases {
        let out = peel_rounds_serial(&g, k);
        assert_eq!(out.success(), empties, "{label}: unexpected core");
        let got = mode_string(&g, &out, ADAPTIVE_DENSE_ALPHA);
        assert_eq!(got, expected, "{label}: adaptive mode sequence drifted");
    }
}

#[test]
fn alpha_monotonicity_on_fixed_trace() {
    // Structural property behind the pins: raising α can only turn F
    // rounds into D rounds, never the reverse — the decision is monotone
    // in α at every round of a fixed trace.
    let g = Gnm::new(50_000, 0.70, 4).sample(&mut Xoshiro256StarStar::new(24));
    let out = peel_rounds_serial(&g, 2);
    let mut prev = mode_string(&g, &out, 1);
    for alpha in [2u64, 4, 8, 16, 32] {
        let cur = mode_string(&g, &out, alpha);
        for (p, c) in prev.chars().zip(cur.chars()) {
            assert!(
                !(p == 'D' && c == 'F'),
                "alpha={alpha}: dense round reverted to frontier"
            );
        }
        prev = cur;
    }
}

//! Property-based tests: all peeling engines agree, and their outputs
//! satisfy the defining invariants of the k-core and of claim schedules.

use proptest::prelude::*;

use peel_core::parallel::{peel_parallel, ParallelOpts, Strategy as PeelStrategy};
use peel_core::peel_parallel_in;
use peel_core::sequential::{peel_greedy, peel_rounds_serial};
use peel_core::subtable::{peel_subtables, SubtableOpts};
use peel_core::trace::UNPEELED;
use peel_core::workspace::PeelWorkspace;
use peel_graph::models::{Gnm, Partitioned};
use peel_graph::rng::Xoshiro256StarStar;
use peel_graph::{Hypergraph, HypergraphBuilder};

/// Strategy: a random r-uniform hypergraph described by (n, r, edge list).
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (2usize..=5, 5usize..=80).prop_flat_map(|(r, n)| {
        let n = n.max(r + 1);
        let max_edges = 3 * n;
        proptest::collection::vec(proptest::collection::vec(0..n as u32, r), 0..max_edges).prop_map(
            move |mut edges| {
                // Repair duplicate endpoints inside an edge by re-rolling
                // deterministically (shift until distinct).
                for e in edges.iter_mut() {
                    for i in 0..e.len() {
                        let mut guard = 0;
                        while e[..i].contains(&e[i]) {
                            e[i] = (e[i] + 1) % n as u32;
                            guard += 1;
                            assert!(guard <= n, "cannot make edge distinct");
                        }
                    }
                }
                let mut b = HypergraphBuilder::new(n, r);
                for e in &edges {
                    b.push_edge(e);
                }
                b.build().expect("repaired edges are valid")
            },
        )
    })
}

/// Strategy: a random partitioned hypergraph (one endpoint per subtable).
fn arb_partitioned() -> impl Strategy<Value = Hypergraph> {
    (2usize..=4, 3usize..=20).prop_flat_map(|(r, per_part)| {
        let n = r * per_part;
        let max_edges = 3 * n;
        proptest::collection::vec(
            proptest::collection::vec(0..per_part as u32, r),
            0..max_edges,
        )
        .prop_map(move |edges| {
            let mut b = HypergraphBuilder::new(n, r).with_partition(r);
            for e in &edges {
                let abs: Vec<u32> = e
                    .iter()
                    .enumerate()
                    .map(|(j, &off)| (j * per_part) as u32 + off)
                    .collect();
                b.push_edge(&abs);
            }
            b.build().expect("partitioned edges are valid")
        })
    })
}

fn core_set(peel_round: &[u32]) -> Vec<u32> {
    peel_round
        .iter()
        .enumerate()
        .filter(|(_, &r)| r == UNPEELED)
        .map(|(v, _)| v as u32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The k-core is unique: greedy, serial-rounds, dense, frontier, and
    /// adaptive all find the same core vertex set.
    #[test]
    fn engines_agree_on_core(g in arb_hypergraph(), k in 1u32..=4) {
        let greedy = peel_greedy(&g, k);
        let serial = peel_rounds_serial(&g, k);

        prop_assert_eq!(serial.core_vertices, greedy.core_vertices);
        prop_assert_eq!(serial.core_edges, greedy.core_edges);
        let want = core_set(&serial.peel_round);
        for strategy in [PeelStrategy::Dense, PeelStrategy::Frontier, PeelStrategy::Adaptive] {
            let out = peel_parallel(&g, k, &ParallelOpts { strategy, ..Default::default() });
            prop_assert_eq!(&core_set(&out.peel_round), &want, "{:?}", strategy);
        }
    }

    /// Synchronous semantics are engine-independent: identical round counts,
    /// per-vertex peel rounds, and survivor series.
    #[test]
    fn engines_agree_on_rounds(g in arb_hypergraph(), k in 1u32..=4) {
        let serial = peel_rounds_serial(&g, k);
        for strategy in [PeelStrategy::Dense, PeelStrategy::Frontier, PeelStrategy::Adaptive] {
            let out = peel_parallel(&g, k, &ParallelOpts { strategy, ..Default::default() });
            prop_assert_eq!(out.rounds, serial.rounds, "{:?}", strategy);
            prop_assert_eq!(&out.peel_round, &serial.peel_round, "{:?}", strategy);
            prop_assert_eq!(&out.edge_kill_round, &serial.edge_kill_round, "{:?}", strategy);
            prop_assert_eq!(out.survivor_series(), serial.survivor_series(), "{:?}", strategy);
        }
    }

    /// ISSUE 4 satellite: `Strategy::Adaptive` agrees with the serial
    /// reference (rounds, per-vertex peel rounds, core size) on random
    /// `Gnm` instances across seeds and k ∈ {2, 3} — run through a reused
    /// workspace, so the steady-state pooled path is what's validated.
    #[test]
    fn adaptive_agrees_with_serial_on_gnm(
        seed in any::<u64>(),
        n in 100usize..1500,
        c in 0.3f64..1.2,
        r in 3usize..=4,
        k in 2u32..=3,
    ) {
        let g = Gnm::new(n, c, r).sample(&mut Xoshiro256StarStar::new(seed));
        let serial = peel_rounds_serial(&g, k);
        let mut ws = PeelWorkspace::new();
        let opts = ParallelOpts { strategy: PeelStrategy::Adaptive, ..Default::default() };
        let run = peel_parallel_in(&g, k, &opts, &mut ws);
        prop_assert_eq!(run.rounds, serial.rounds);
        prop_assert_eq!(run.core_vertices, serial.core_vertices);
        prop_assert_eq!(run.core_edges, serial.core_edges);
        let out = ws.outcome(&run);
        prop_assert_eq!(&out.peel_round, &serial.peel_round);
        prop_assert_eq!(&out.edge_kill_round, &serial.edge_kill_round);
    }

    /// ISSUE 8 satellite: the CSR kill phases (vertex-sorted endpoint
    /// runs, striped degree decrements, prefetch) must be *bit-identical*
    /// to the serial reference — every strategy, both random models,
    /// k ∈ {2, 3}, across seeds. Runs through one reused workspace so the
    /// steady-state CSR/striped buffers (not fresh allocations) are what
    /// gets validated, and compares the complete per-vertex and per-edge
    /// round arrays, not just aggregate counts.
    #[test]
    fn csr_kill_phases_bit_identical_to_serial(
        seed in any::<u64>(),
        size in 60usize..900,
        c in 0.3f64..1.2,
        r in 3usize..=4,
        k in 2u32..=3,
        partitioned in any::<bool>(),
    ) {
        let g = if partitioned {
            Partitioned::new(size.div_ceil(r) * r, c, r)
                .sample(&mut Xoshiro256StarStar::new(seed))
        } else {
            Gnm::new(size, c, r).sample(&mut Xoshiro256StarStar::new(seed))
        };
        let serial = peel_rounds_serial(&g, k);
        let mut ws = PeelWorkspace::new();
        for strategy in [PeelStrategy::Dense, PeelStrategy::Frontier, PeelStrategy::Adaptive] {
            let opts = ParallelOpts { strategy, ..Default::default() };
            let run = peel_parallel_in(&g, k, &opts, &mut ws);
            prop_assert_eq!(run.rounds, serial.rounds, "{:?}", strategy);
            let out = ws.outcome(&run);
            prop_assert_eq!(&out.peel_round, &serial.peel_round, "{:?}", strategy);
            prop_assert_eq!(&out.edge_kill_round, &serial.edge_kill_round, "{:?}", strategy);
            prop_assert_eq!(out.survivor_series(), serial.survivor_series(), "{:?}", strategy);
        }
    }

    /// Same agreement on the partitioned (subtable) model.
    #[test]
    fn adaptive_agrees_with_serial_on_partitioned(
        seed in any::<u64>(),
        per_part in 30usize..400,
        c in 0.3f64..1.2,
        r in 3usize..=4,
        k in 2u32..=3,
    ) {
        let g = Partitioned::new(per_part * r, c, r).sample(&mut Xoshiro256StarStar::new(seed));
        let serial = peel_rounds_serial(&g, k);
        let opts = ParallelOpts { strategy: PeelStrategy::Adaptive, ..Default::default() };
        let out = peel_parallel(&g, k, &opts);
        prop_assert_eq!(out.rounds, serial.rounds);
        prop_assert_eq!(out.core_vertices, serial.core_vertices);
        prop_assert_eq!(&out.peel_round, &serial.peel_round);
    }

    /// The surviving subgraph really is a k-core: every surviving vertex has
    /// at least k surviving incident edges, and every surviving edge has all
    /// endpoints surviving.
    #[test]
    fn core_satisfies_degree_invariant(g in arb_hypergraph(), k in 1u32..=4) {
        let out = peel_rounds_serial(&g, k);
        let alive_edge: Vec<bool> = out.edge_kill_round.iter().map(|&r| r == UNPEELED).collect();
        for v in 0..g.num_vertices() as u32 {
            if out.peel_round[v as usize] == UNPEELED {
                let live_deg = g.incident(v).iter().filter(|&&e| alive_edge[e as usize]).count();
                prop_assert!(live_deg >= k as usize,
                    "core vertex {v} has live degree {live_deg} < k={k}");
            }
        }
        for (e, &alive) in alive_edge.iter().enumerate() {
            if alive {
                for &w in g.edge(e as u32) {
                    prop_assert_eq!(out.peel_round[w as usize], UNPEELED,
                        "core edge {} touches peeled vertex {}", e, w);
                }
            }
        }
    }

    /// Maximality: peeling the complement in any order is impossible — i.e.
    /// re-running greedy on the core subgraph peels nothing.
    #[test]
    fn core_is_maximal(g in arb_hypergraph(), k in 1u32..=3) {
        let out = peel_greedy(&g, k);
        // Rebuild the core as its own graph.
        let alive: Vec<bool> = {
            let mut peeled = vec![false; g.num_vertices()];
            for &v in &out.peel_order { peeled[v as usize] = true; }
            peeled.iter().map(|&p| !p).collect()
        };
        let mut b = HypergraphBuilder::new(g.num_vertices(), g.arity());
        for (e, vs) in g.edges() {
            if out.edge_killer[e as usize] == UNPEELED {
                prop_assert!(vs.iter().all(|&v| alive[v as usize]));
                b.push_edge(vs);
            }
        }
        let core_graph = b.build().unwrap();
        let again = peel_greedy(&core_graph, k);
        // Only vertices outside the core (now isolated) may peel.
        for &v in &again.peel_order {
            prop_assert!(!alive[v as usize],
                "core vertex {v} peeled on re-run: core not maximal");
        }
    }

    /// Claim validity: killers are endpoints, kill round equals the killer's
    /// peel round, and for k<=2 each vertex claims at most one edge.
    #[test]
    fn claims_are_valid(g in arb_hypergraph(), k in 1u32..=4) {
        for strategy in [PeelStrategy::Dense, PeelStrategy::Frontier] {
            let out = peel_parallel(&g, k, &ParallelOpts { strategy, ..Default::default() });
            let mut per_vertex = vec![0u32; g.num_vertices()];
            for (e, (&killer, &kr)) in out.edge_killer.iter().zip(&out.edge_kill_round).enumerate() {
                prop_assert_eq!(killer == UNPEELED, kr == UNPEELED);
                if killer != UNPEELED {
                    prop_assert!(g.edge(e as u32).contains(&killer));
                    prop_assert_eq!(out.peel_round[killer as usize], kr);
                    per_vertex[killer as usize] += 1;
                }
            }
            if k <= 2 {
                prop_assert!(per_vertex.iter().all(|&c| c <= 1),
                    "k<=2 must give at most one claim per vertex");
            }
        }
    }

    /// Trace bookkeeping adds up.
    #[test]
    fn trace_is_conserved(g in arb_hypergraph(), k in 1u32..=4) {
        let out = peel_parallel(&g, k, &ParallelOpts::default());
        let peeled: u64 = out.trace.iter().map(|s| s.peeled_vertices).sum();
        let killed: u64 = out.trace.iter().map(|s| s.peeled_edges).sum();
        prop_assert_eq!(peeled + out.core_vertices, g.num_vertices() as u64);
        prop_assert_eq!(killed + out.core_edges, g.num_edges() as u64);
        for w in out.trace.windows(2) {
            prop_assert!(w[1].unpeeled_vertices < w[0].unpeeled_vertices);
            prop_assert!(w[1].live_edges <= w[0].live_edges);
            prop_assert_eq!(w[1].round, w[0].round + 1);
        }
        if let Some(last) = out.trace.last() {
            prop_assert_eq!(last.unpeeled_vertices, out.core_vertices);
            prop_assert_eq!(last.live_edges, out.core_edges);
        }
    }

    /// Subtable engine: same core as greedy, and a valid subround structure.
    #[test]
    fn subtable_agrees_and_is_wellformed(g in arb_partitioned(), k in 1u32..=3) {
        let greedy = peel_greedy(&g, k);
        let out = peel_subtables(&g, k, &SubtableOpts::default());
        prop_assert_eq!(out.core_vertices, greedy.core_vertices);
        prop_assert_eq!(out.core_edges, greedy.core_edges);

        let parts = g.partition().unwrap();
        // A vertex peeled in subround s must belong to subtable (s-1) % r.
        for (v, &s) in out.peel_subround.iter().enumerate() {
            if s != UNPEELED {
                let expect = ((s - 1) as usize) % parts.parts;
                prop_assert_eq!(parts.part_of(v as u32), expect);
            }
        }
        // Claims valid.
        for (e, &killer) in out.edge_killer.iter().enumerate() {
            if killer != UNPEELED {
                prop_assert!(g.edge(e as u32).contains(&killer));
            }
        }
    }

    /// Subtable peeling never needs more than r × the plain synchronous
    /// rounds' subround budget (one plain round is at most r subrounds) and
    /// never fewer subrounds than plain rounds.
    #[test]
    fn subtable_round_bounds(g in arb_partitioned()) {
        let k = 2u32;
        let plain = peel_rounds_serial(&g, k);
        let sub = peel_subtables(&g, k, &SubtableOpts::default());
        let r = g.partition().unwrap().parts as u32;
        if plain.core_vertices == g.num_vertices() as u64 {
            // Nothing peelable at all.
            prop_assert_eq!(sub.subrounds, 0);
        } else {
            prop_assert!(sub.subrounds <= plain.rounds * r,
                "subrounds {} > r*rounds {}", sub.subrounds, plain.rounds * r);
            // Subround progress dominates plain progress round-for-round,
            // so finishing cannot take more rounds (in full-round units).
            prop_assert!(sub.rounds <= plain.rounds,
                "subtable rounds {} > plain rounds {}", sub.rounds, plain.rounds);
        }
    }
}

//! Reusable peeling state: allocate once, peel many graphs.
//!
//! Every hot-path buffer a parallel peel needs lives in a
//! [`PeelWorkspace`]: per-vertex degrees and peel rounds, per-edge kill
//! metadata, the alive/queued bitsets, the frontier vector, the striped
//! per-thread collection buffers, and the round trace. A fresh workspace
//! owns nothing; the first peel sizes it, and every subsequent peel of a
//! same-or-smaller graph reuses the buffers without touching the
//! allocator — which is what makes repeated peeling (service reconcile
//! epochs, simulation sweeps, benchmarks) allocation-free in steady
//! state.
//!
//! [`crate::parallel::peel_parallel`] wraps a throwaway workspace for
//! one-shot callers; [`crate::parallel::peel_parallel_in`] borrows yours.

// ordering: Relaxed — the workspace only resets and reads engine state
// outside the parallel phases (exclusive &mut or post-join), so the
// atomics exist for type compatibility with the engines, not for
// synchronization; the engines' rayon barriers carry every needed edge.
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};

use peel_graph::bits::{AtomicBitset, Striped, StripedCounters};
use peel_graph::Hypergraph;
use rayon::prelude::*;

use crate::parallel::ADAPTIVE_DENSE_ALPHA;
use crate::trace::{PeelOutcome, RoundStats, UNPEELED};

/// Summary of one peel run executed in a [`PeelWorkspace`].
///
/// The cheap-to-copy part of a [`PeelOutcome`]; the per-vertex/per-edge
/// arrays stay in the workspace (read them through its accessors, or
/// materialize everything with [`PeelWorkspace::outcome`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeelRun {
    /// The `k` threshold used.
    pub k: u32,
    /// Number of productive rounds.
    pub rounds: u32,
    /// Vertices left in the k-core (0 iff peeling succeeded).
    pub core_vertices: u64,
    /// Edges left in the k-core.
    pub core_edges: u64,
}

impl PeelRun {
    /// Did peeling reach the empty k-core?
    #[inline]
    pub fn success(&self) -> bool {
        self.core_vertices == 0
    }
}

/// Reusable buffers for [`crate::parallel::peel_parallel_in`].
///
/// All atomics are plain data between runs; the engine's phase barriers
/// (see the memory-ordering notes in [`crate::parallel`]) make the
/// in-run concurrent access sound.
#[derive(Debug)]
pub struct PeelWorkspace {
    /// Live degree of each vertex.
    pub(crate) deg: Vec<AtomicU32>,
    /// Round each vertex was peeled in ([`UNPEELED`] = still alive).
    pub(crate) peel_round: Vec<AtomicU32>,
    /// One bit per vertex mirroring `peel_round != UNPEELED` — the kill
    /// phases test peeled-ness through this 8-bytes-per-512-vertices
    /// bitset instead of the 4-bytes-per-vertex round array, so the dense
    /// scan's hottest random reads stay cache-resident.
    pub(crate) peeled: AtomicBitset,
    /// Round each edge was removed in.
    pub(crate) edge_kill_round: Vec<AtomicU32>,
    /// Peeled endpoint that claimed each edge.
    pub(crate) edge_killer: Vec<AtomicU32>,
    /// One bit per edge: still live?
    pub(crate) edge_alive: AtomicBitset,
    /// One bit per vertex: already queued for a future frontier?
    pub(crate) queued: AtomicBitset,
    /// The current round's frontier.
    pub(crate) frontier: Vec<u32>,
    /// Striped per-thread buffers the next frontier is collected into.
    pub(crate) stripes: Striped<u32>,
    /// Striped per-thread degree-decrement counters the dense kill phase
    /// accumulates into, merged once per round.
    pub(crate) dec: StripedCounters,
    /// Per-round statistics of the current/last run.
    pub(crate) trace: Vec<RoundStats>,
    /// The α coefficient of [`crate::parallel::adaptive_picks_dense`]'s
    /// switch rule for this workspace's runs. Defaults to
    /// [`ADAPTIVE_DENSE_ALPHA`]; tune it per deployment when the
    /// dense-scan/propagation cost ratio of the hardware differs from the
    /// fit (larger α holds the dense direction longer).
    pub adaptive_alpha: u64,
}

impl Default for PeelWorkspace {
    fn default() -> Self {
        PeelWorkspace {
            deg: Vec::new(),
            peel_round: Vec::new(),
            peeled: AtomicBitset::new(),
            edge_kill_round: Vec::new(),
            edge_killer: Vec::new(),
            edge_alive: AtomicBitset::new(),
            queued: AtomicBitset::new(),
            frontier: Vec::new(),
            stripes: Striped::new(),
            dec: StripedCounters::new(),
            trace: Vec::new(),
            adaptive_alpha: ADAPTIVE_DENSE_ALPHA,
        }
    }
}

fn reset_atomic_vec(v: &mut Vec<AtomicU32>, len: usize) {
    v.resize_with(len, || AtomicU32::new(0));
}

impl PeelWorkspace {
    /// Fresh, empty workspace (sized lazily by the first peel).
    pub fn new() -> Self {
        PeelWorkspace::default()
    }

    /// Resize every buffer for `g` and reinitialize the per-run state.
    /// Allocation-free when the workspace has already peeled a graph at
    /// least this large.
    pub(crate) fn reset_for(&mut self, g: &Hypergraph) {
        let n = g.num_vertices();
        let m = g.num_edges();
        reset_atomic_vec(&mut self.deg, n);
        reset_atomic_vec(&mut self.peel_round, n);
        reset_atomic_vec(&mut self.edge_kill_round, m);
        reset_atomic_vec(&mut self.edge_killer, m);
        self.edge_alive.reset(m, true);
        self.queued.reset(n, false);
        self.peeled.reset(n, false);
        // One decrement stripe per worker the current pool will run: the
        // dense kill phase assigns each stripe to exactly one task.
        self.dec.reset(rayon::current_num_threads().clamp(1, 32), n);
        self.frontier.clear();
        self.trace.clear();
        // A previous truncated run (max_rounds) may have left stripe
        // residue behind.
        self.stripes.drain_each(|_| {});
        // Value initialization, in parallel for large graphs.
        let (deg, peel_round) = (&self.deg, &self.peel_round);
        (0..n as u32).into_par_iter().for_each(|v| {
            deg[v as usize].store(g.degree(v), Relaxed);
            peel_round[v as usize].store(UNPEELED, Relaxed);
        });
        let (kill_round, killer) = (&self.edge_kill_round, &self.edge_killer);
        (0..m as u32).into_par_iter().for_each(|e| {
            kill_round[e as usize].store(UNPEELED, Relaxed);
            killer[e as usize].store(UNPEELED, Relaxed);
        });
    }

    /// Per-round statistics of the last run (empty if tracing was off).
    pub fn trace(&self) -> &[RoundStats] {
        &self.trace
    }

    /// Round vertex `v` was peeled in during the last run
    /// ([`UNPEELED`] for core vertices).
    #[inline]
    pub fn peel_round_of(&self, v: u32) -> u32 {
        self.peel_round[v as usize].load(Relaxed)
    }

    /// Round edge `e` was removed in during the last run.
    #[inline]
    pub fn edge_kill_round_of(&self, e: u32) -> u32 {
        self.edge_kill_round[e as usize].load(Relaxed)
    }

    /// The peeled endpoint that claimed edge `e` during the last run.
    #[inline]
    pub fn edge_killer_of(&self, e: u32) -> u32 {
        self.edge_killer[e as usize].load(Relaxed)
    }

    /// Materialize the last run as an owned [`PeelOutcome`] (copies the
    /// per-vertex/per-edge arrays — one-shot callers only; steady-state
    /// consumers should read through the accessors instead).
    pub fn outcome(&self, run: &PeelRun) -> PeelOutcome {
        PeelOutcome {
            k: run.k,
            rounds: run.rounds,
            trace: self.trace.clone(),
            peel_round: self.peel_round.iter().map(|a| a.load(Relaxed)).collect(),
            edge_kill_round: self
                .edge_kill_round
                .iter()
                .map(|a| a.load(Relaxed))
                .collect(),
            edge_killer: self.edge_killer.iter().map(|a| a.load(Relaxed)).collect(),
            core_vertices: run.core_vertices,
            core_edges: run.core_edges,
        }
    }
}

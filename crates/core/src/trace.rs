//! Peeling outcomes: per-round statistics, per-vertex/edge peel metadata,
//! and claim schedules for downstream replay.

/// Sentinel for "never peeled" in `peel_round` / `edge_kill_round` /
/// `edge_killer` arrays.
pub const UNPEELED: u32 = u32::MAX;

/// Statistics of one synchronous peeling round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Round number, 1-based (matches the paper's `t`).
    pub round: u32,
    /// Vertices peeled in this round.
    pub peeled_vertices: u64,
    /// Edges removed in this round.
    pub peeled_edges: u64,
    /// Vertices still unpeeled *after* this round (Table 2's "Experiment").
    pub unpeeled_vertices: u64,
    /// Edges still live after this round.
    pub live_edges: u64,
}

/// Statistics of one subround of the subtable engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubroundStats {
    /// Global subround index, 1-based (`(round−1)·r + subtable`).
    pub subround: u32,
    /// Round number `i`, 1-based.
    pub round: u32,
    /// Subtable `j` peeled in this subround, 1-based.
    pub subtable: u32,
    /// Vertices peeled in this subround.
    pub peeled_vertices: u64,
    /// Edges removed in this subround.
    pub peeled_edges: u64,
    /// Vertices (of the whole graph) unpeeled after this subround
    /// (Table 6's "Experiment").
    pub unpeeled_vertices: u64,
    /// Edges live after this subround.
    pub live_edges: u64,
}

/// Result of running a round-synchronous peeling engine to its fixpoint.
#[derive(Debug, Clone)]
pub struct PeelOutcome {
    /// The `k` threshold used.
    pub k: u32,
    /// Number of *productive* rounds (rounds that peeled ≥ 1 vertex). The
    /// paper's Table 1 reports exactly this quantity.
    pub rounds: u32,
    /// Per-round statistics (length = `rounds`); empty if tracing disabled.
    pub trace: Vec<RoundStats>,
    /// For each vertex, the round in which it was peeled ([`UNPEELED`] for
    /// k-core vertices).
    pub peel_round: Vec<u32>,
    /// For each edge, the round in which it was removed ([`UNPEELED`] for
    /// k-core edges).
    pub edge_kill_round: Vec<u32>,
    /// For each edge, the peeled endpoint that claimed/removed it
    /// ([`UNPEELED`] for k-core edges). For `k = 2` the claiming vertex
    /// always had degree exactly 1 at removal time, and claims at most one
    /// edge — the invariant `peel-fn` and `peel-codes` rely on.
    pub edge_killer: Vec<u32>,
    /// Number of vertices in the k-core (0 iff peeling succeeded).
    pub core_vertices: u64,
    /// Number of edges in the k-core.
    pub core_edges: u64,
}

impl PeelOutcome {
    /// Did peeling reach the empty k-core?
    #[inline]
    pub fn success(&self) -> bool {
        self.core_vertices == 0
    }

    /// Was vertex `v` left in the k-core?
    #[inline]
    pub fn is_core_vertex(&self, v: u32) -> bool {
        self.peel_round[v as usize] == UNPEELED
    }

    /// Ids of the k-core vertices, ascending.
    pub fn core_vertex_ids(&self) -> Vec<u32> {
        self.peel_round
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == UNPEELED)
            .map(|(v, _)| v as u32)
            .collect()
    }

    /// Ids of the k-core edges, ascending.
    pub fn core_edge_ids(&self) -> Vec<u32> {
        self.edge_kill_round
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == UNPEELED)
            .map(|(e, _)| e as u32)
            .collect()
    }

    /// Survivor counts after each round: `unpeeled_vertices` column of the
    /// trace (Table 2's "Experiment" series).
    pub fn survivor_series(&self) -> Vec<u64> {
        self.trace.iter().map(|s| s.unpeeled_vertices).collect()
    }

    /// Claims grouped by round: `schedule[t]` lists `(edge, killer_vertex)`
    /// pairs removed in round `t+1`. Within one round all claims are
    /// mutually independent (see the `peel-fn` crate docs for the proof),
    /// which is what makes reverse-order replay parallelizable.
    pub fn claims_by_round(&self) -> Vec<Vec<(u32, u32)>> {
        let mut schedule: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.rounds as usize];
        for (e, (&round, &killer)) in self
            .edge_kill_round
            .iter()
            .zip(self.edge_killer.iter())
            .enumerate()
        {
            if round != UNPEELED {
                schedule[(round - 1) as usize].push((e as u32, killer));
            }
        }
        schedule
    }
}

/// Result of running the subtable (subround) engine.
#[derive(Debug, Clone)]
pub struct SubtableOutcome {
    /// The `k` threshold used.
    pub k: u32,
    /// Index of the last productive subround (Table 5's "Subrounds").
    pub subrounds: u32,
    /// Number of (possibly partial) rounds spanned: `ceil(subrounds / r)`.
    pub rounds: u32,
    /// Per-subround statistics; empty if tracing disabled.
    pub trace: Vec<SubroundStats>,
    /// For each vertex, the *subround* in which it was peeled
    /// ([`UNPEELED`] for core vertices).
    pub peel_subround: Vec<u32>,
    /// For each edge, the subround in which it was removed.
    pub edge_kill_subround: Vec<u32>,
    /// For each edge, the peeled endpoint that removed it. Unlike the plain
    /// parallel engine, within a subround every claim is uncontended: all
    /// peeled vertices live in the same subtable and an edge has exactly one
    /// endpoint there — this is precisely how the paper's IBLT
    /// implementation avoids deleting an item twice.
    pub edge_killer: Vec<u32>,
    /// Number of vertices in the k-core.
    pub core_vertices: u64,
    /// Number of edges in the k-core.
    pub core_edges: u64,
}

impl SubtableOutcome {
    /// Did peeling reach the empty k-core?
    #[inline]
    pub fn success(&self) -> bool {
        self.core_vertices == 0
    }

    /// Survivor counts after each subround (Table 6's "Experiment" series).
    pub fn survivor_series(&self) -> Vec<u64> {
        self.trace.iter().map(|s| s.unpeeled_vertices).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_outcome() -> PeelOutcome {
        PeelOutcome {
            k: 2,
            rounds: 2,
            trace: vec![
                RoundStats {
                    round: 1,
                    peeled_vertices: 2,
                    peeled_edges: 1,
                    unpeeled_vertices: 2,
                    live_edges: 1,
                },
                RoundStats {
                    round: 2,
                    peeled_vertices: 1,
                    peeled_edges: 1,
                    unpeeled_vertices: 1,
                    live_edges: 0,
                },
            ],
            peel_round: vec![1, 1, 2, UNPEELED],
            edge_kill_round: vec![1, 2],
            edge_killer: vec![0, 2],
            core_vertices: 1,
            core_edges: 0,
        }
    }

    #[test]
    fn accessors() {
        let o = sample_outcome();
        assert!(!o.success());
        assert!(o.is_core_vertex(3));
        assert!(!o.is_core_vertex(0));
        assert_eq!(o.core_vertex_ids(), vec![3]);
        assert_eq!(o.core_edge_ids(), Vec::<u32>::new());
        assert_eq!(o.survivor_series(), vec![2, 1]);
    }

    #[test]
    fn claims_schedule_groups_by_round() {
        let o = sample_outcome();
        let sched = o.claims_by_round();
        assert_eq!(sched.len(), 2);
        assert_eq!(sched[0], vec![(0, 0)]);
        assert_eq!(sched[1], vec![(1, 2)]);
    }
}

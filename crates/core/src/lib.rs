//! # peel-core — parallel peeling engines for random hypergraphs
//!
//! This crate is the primary contribution of the reproduction of *Parallel
//! Peeling Algorithms* (Jiang, Mitzenmacher, Thaler; SPAA 2014): a family of
//! k-core peeling engines over [`peel_graph::Hypergraph`], all implementing
//! the same *synchronous round semantics* the paper analyzes —
//!
//! > in each round, **every** vertex whose degree (number of live incident
//! > edges) at the start of the round is `< k` is removed, together with all
//! > of its incident edges.
//!
//! The fixpoint of this process is the (unique, order-independent) k-core.
//!
//! ## Engines
//!
//! | Engine | Module | Work per round | Notes |
//! |---|---|---|---|
//! | Greedy sequential | [`sequential::peel_greedy`] | — (no rounds) | classic queue peeler, `O(n + rm)` total; the serial baseline |
//! | Serial round-synchronous | [`sequential::peel_rounds_serial`] | `O(frontier)` | same semantics as the parallel engines, useful for cross-validation and cheap trials |
//! | Parallel dense | [`parallel::peel_parallel`] with [`Strategy::Dense`] | `O(n + m)` scan | GPU-style: one task per vertex and per edge every round; deterministic |
//! | Parallel frontier | [`parallel::peel_parallel`] with [`Strategy::Frontier`] | `O(frontier + touched edges)` | work-efficient CPU variant; identical rounds, nondeterministic claim winners |
//! | Parallel adaptive | [`parallel::peel_parallel`] with [`Strategy::Adaptive`] (default) | min of the above | direction-optimizing: dense edge scan while the frontier is broad, frontier propagation once it collapses |
//! | Subtable / subround | [`subtable::peel_subtables`] | `O(part + touched)` | Appendix B's variant: `r` subrounds per round, one subtable each — the IBLT discipline that avoids double-peeling |
//!
//! The parallel engines run out of a reusable [`workspace::PeelWorkspace`]
//! (degrees, rounds, kill metadata, bitsets, frontier buffers): call
//! [`parallel::peel_parallel_in`] with your own workspace and repeated
//! peels are allocation-free in steady state — the hot-path contract the
//! `peel-service` reconcile scheduler and the benches rely on.
//!
//! All engines produce a [`trace::PeelOutcome`] recording, per round, how
//! many vertices/edges were peeled and how many survive — exactly the series
//! the paper's Tables 1, 2, 5, and 6 report — plus per-edge *claims* (which
//! vertex removed each edge, in which round). Claims are what downstream
//! consumers need: `peel-fn` replays them in reverse to assign static
//! functions, `peel-codes` replays them forward to decode.
//!
//! ## Example
//!
//! ```
//! use peel_graph::models::Gnm;
//! use peel_graph::rng::SplitMix64;
//! use peel_core::parallel::{peel_parallel, ParallelOpts};
//!
//! let g = Gnm::new(20_000, 0.70, 4).sample(&mut SplitMix64::new(7));
//! let out = peel_parallel(&g, 2, &ParallelOpts::default());
//! // c = 0.70 < c*_{2,4} ≈ 0.772: the 2-core is empty w.h.p. ...
//! assert!(out.success());
//! // ... and it takes ~13 rounds at this size (log log n scaling).
//! assert!(out.rounds >= 8 && out.rounds <= 20, "rounds = {}", out.rounds);
//! ```

#![warn(missing_docs)]

pub mod coreness;
pub mod parallel;
pub mod sequential;
pub mod subtable;
pub mod trace;
pub mod workspace;

pub use coreness::{coreness, degeneracy};
pub use parallel::{peel_parallel, peel_parallel_in, ParallelOpts, Strategy};
pub use sequential::{kcore_vertices, peel_greedy, peel_rounds_serial};
pub use subtable::{peel_subtables, SubtableOpts};
pub use trace::{PeelOutcome, RoundStats, SubroundStats, SubtableOutcome, UNPEELED};
pub use workspace::{PeelRun, PeelWorkspace};

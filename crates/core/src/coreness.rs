//! Full core decomposition: the *coreness* of every vertex.
//!
//! The paper peels for one fixed `k`; a natural library extension is the
//! whole core hierarchy — `coreness(v)` is the largest `k` such that `v`
//! belongs to the (non-empty) k-core. Equivalently: peel vertices in order
//! of current degree; a vertex's coreness is the highest "water mark" of
//! the minimum degree at the moment it is removed.
//!
//! Implemented with a bucket queue and lazy entries, `O(n + rm + maxdeg)`
//! time. Degrees in hypergraphs count *live incident edges* (an edge dies
//! with its first removed endpoint), matching the peeling semantics used
//! everywhere else in this workspace, so for every `k`:
//! `{v : coreness(v) ≥ k}` is exactly the k-core found by the engines.

use peel_graph::Hypergraph;

/// Compute the coreness of every vertex.
pub fn coreness(g: &Hypergraph) -> Vec<u32> {
    let n = g.num_vertices();
    let m = g.num_edges();
    let mut deg: Vec<u32> = (0..n as u32).map(|v| g.degree(v)).collect();
    let maxdeg = deg.iter().copied().max().unwrap_or(0) as usize;

    // Bucket queue with lazy entries: a vertex may appear in several
    // buckets; an entry is live iff it matches the vertex's current degree.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); maxdeg + 1];
    for (v, &d) in deg.iter().enumerate() {
        buckets[d as usize].push(v as u32);
    }
    let mut removed = vec![false; n];
    let mut edge_alive = vec![true; m];
    let mut core = vec![0u32; n];
    let mut level = 0u32; // current water mark
    let mut cursor = 0usize; // lowest possibly-non-empty bucket

    for _ in 0..n {
        // Find the lowest bucket with a live entry.
        let (v, d) = loop {
            while cursor <= maxdeg && buckets[cursor].is_empty() {
                cursor += 1;
            }
            debug_assert!(cursor <= maxdeg, "ran out of vertices early");
            let v = buckets[cursor].pop().unwrap();
            if !removed[v as usize] && deg[v as usize] as usize == cursor {
                break (v, cursor as u32);
            }
            // stale entry: skip
        };

        level = level.max(d);
        core[v as usize] = level;
        removed[v as usize] = true;

        for &e in g.incident(v) {
            if !edge_alive[e as usize] {
                continue;
            }
            edge_alive[e as usize] = false;
            for &w in g.edge(e) {
                if removed[w as usize] {
                    continue;
                }
                deg[w as usize] -= 1;
                let nd = deg[w as usize] as usize;
                buckets[nd].push(w);
                if nd < cursor {
                    cursor = nd;
                }
            }
        }
    }
    core
}

/// The degeneracy of the hypergraph: the maximum coreness over all
/// vertices (0 for an empty graph).
pub fn degeneracy(g: &Hypergraph) -> u32 {
    coreness(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::kcore_vertices;
    use peel_graph::models::Gnm;
    use peel_graph::rng::Xoshiro256StarStar;
    use peel_graph::HypergraphBuilder;

    #[test]
    fn triangle_with_tail() {
        let mut b = HypergraphBuilder::new(4, 2);
        b.push_edge(&[0, 1]);
        b.push_edge(&[1, 2]);
        b.push_edge(&[2, 0]);
        b.push_edge(&[0, 3]);
        let g = b.build().unwrap();
        // Triangle vertices have coreness 2, the pendant has coreness 1.
        assert_eq!(coreness(&g), vec![2, 2, 2, 1]);
        assert_eq!(degeneracy(&g), 2);
    }

    #[test]
    fn path_has_coreness_one() {
        let mut b = HypergraphBuilder::new(5, 2);
        for i in 0..4u32 {
            b.push_edge(&[i, i + 1]);
        }
        let g = b.build().unwrap();
        assert_eq!(coreness(&g), vec![1; 5]);
    }

    #[test]
    fn isolated_vertices_have_coreness_zero() {
        let mut b = HypergraphBuilder::new(4, 2);
        b.push_edge(&[0, 1]);
        let g = b.build().unwrap();
        assert_eq!(coreness(&g), vec![1, 1, 0, 0]);
    }

    #[test]
    fn empty_graph() {
        let g = HypergraphBuilder::new(3, 2).build().unwrap();
        assert_eq!(coreness(&g), vec![0, 0, 0]);
        assert_eq!(degeneracy(&g), 0);
    }

    #[test]
    fn hyperedge_clique() {
        // Two overlapping 3-edges sharing two vertices.
        let mut b = HypergraphBuilder::new(4, 3);
        b.push_edge(&[0, 1, 2]);
        b.push_edge(&[1, 2, 3]);
        let g = b.build().unwrap();
        // All degrees <= 2; removing 0 (deg 1) kills edge 0, then everyone
        // has degree <= 1.
        assert_eq!(coreness(&g), vec![1, 1, 1, 1]);
    }

    #[test]
    fn coreness_consistent_with_kcore_engines() {
        for seed in 0..4u64 {
            let mut rng = Xoshiro256StarStar::new(seed);
            let g = Gnm::new(3_000, 1.0, 3).sample(&mut rng);
            let core = coreness(&g);
            for k in 1..=4u32 {
                let from_coreness: Vec<u32> = (0..g.num_vertices() as u32)
                    .filter(|&v| core[v as usize] >= k)
                    .collect();
                let from_engine = kcore_vertices(&g, k);
                assert_eq!(
                    from_coreness, from_engine,
                    "seed {seed}, k={k}: coreness and peeling disagree"
                );
            }
        }
    }

    #[test]
    fn coreness_zero_iff_never_in_1core() {
        let mut rng = Xoshiro256StarStar::new(9);
        let g = Gnm::new(500, 0.3, 3).sample(&mut rng);
        let core = coreness(&g);
        for v in 0..500u32 {
            // 1-core = vertices with at least one edge after peeling
            // degree-0 vertices, i.e. every non-isolated vertex.
            assert_eq!(core[v as usize] == 0, g.degree(v) == 0);
        }
    }
}

//! Subtable (subround) peeling — the paper's Appendix B variant.
//!
//! Vertices are partitioned into `r` subtables and each *round* consists of
//! `r` *subrounds*; subround `j` peels (in parallel) exactly the alive
//! sub-threshold vertices of subtable `j`. Because every edge has one
//! endpoint per subtable, within a subround **no two peeled vertices share
//! an edge that both could claim from the same side** — each edge has
//! exactly one endpoint in the active subtable, so claims are uncontended.
//! This is precisely how the paper's IBLT implementation guarantees an item
//! is deleted only once (Section 6), at the price of `r` serial subrounds
//! per round.
//!
//! Theorem 7 shows the price is small: survival probabilities fall
//! *Fibonacci-exponentially*, so the total number of subrounds is only
//! `≈ log(r−1)/log(φ_{r−1})` times the plain round count (≈1.46× for r=3,
//! ≈1.8–2× for r=4), not `r` times.
//!
//! Termination: the engine stops after `r` consecutive unproductive
//! subrounds (a full silent round = global fixpoint). The reported
//! [`SubtableOutcome::subrounds`] is the index of the last *productive*
//! subround, matching Table 5's accounting.

use rayon::prelude::*;
// ordering: Relaxed throughout — the subround engine's writes are either
// idempotent claims (every racer stores the same subround number) or
// commutative RMWs (fetch_sub on degrees, fetch_add on the kill count),
// and subrounds are separated by rayon fork-join barriers that carry the
// cross-subround happens-before. Same argument as crate::parallel.
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};

use peel_graph::{Hypergraph, Partition};

use crate::trace::{SubroundStats, SubtableOutcome, UNPEELED};

/// Options for [`peel_subtables`].
#[derive(Debug, Clone)]
pub struct SubtableOpts {
    /// Stop after this many subrounds even if not at fixpoint.
    pub max_subrounds: u32,
    /// Record per-subround statistics (on by default).
    pub collect_trace: bool,
}

impl Default for SubtableOpts {
    fn default() -> Self {
        SubtableOpts {
            max_subrounds: u32::MAX,
            collect_trace: true,
        }
    }
}

/// Peel a *partitioned* hypergraph with the subround discipline.
///
/// # Panics
/// Panics if `g` carries no [`Partition`] (build it with
/// [`peel_graph::models::Partitioned`] or declare a partition on the
/// builder).
pub fn peel_subtables(g: &Hypergraph, k: u32, opts: &SubtableOpts) -> SubtableOutcome {
    assert!(k >= 1, "peeling threshold k must be >= 1");
    let partition: Partition = g
        .partition()
        .expect("subtable peeling requires a partitioned hypergraph");
    let parts = partition.parts;
    let n = g.num_vertices();
    let m = g.num_edges();

    let deg: Vec<AtomicU32> = (0..n as u32).map(|v| AtomicU32::new(g.degree(v))).collect();
    let peel_subround: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNPEELED)).collect();
    let edge_kill_subround: Vec<AtomicU32> = (0..m).map(|_| AtomicU32::new(UNPEELED)).collect();
    let edge_killer: Vec<AtomicU32> = (0..m).map(|_| AtomicU32::new(UNPEELED)).collect();

    let mut trace = Vec::new();
    let mut unpeeled = n as u64;
    let mut live_edges = m as u64;
    let mut subround = 0u32;
    let mut last_productive = 0u32;
    let mut idle_streak = 0usize;

    while subround < opts.max_subrounds {
        let j = (subround as usize) % parts; // subtable for this subround
        subround += 1;

        // Phase 1: frontier within subtable j (dense scan of the part's
        // contiguous vertex range).
        let range = partition.range(j);
        let frontier: Vec<u32> = range
            .into_par_iter()
            .filter(|&v| {
                peel_subround[v as usize].load(Relaxed) == UNPEELED
                    && deg[v as usize].load(Relaxed) < k
            })
            .collect();

        if frontier.is_empty() {
            idle_streak += 1;
            if idle_streak >= parts {
                break; // a full silent round: global fixpoint
            }
            continue;
        }
        idle_streak = 0;
        last_productive = subround;

        // Phase 2: mark.
        frontier.par_iter().for_each(|&v| {
            peel_subround[v as usize].store(subround, Relaxed);
        });

        // Phase 3: kill incident live edges. Within this subround each live
        // edge has exactly one endpoint in subtable j, so no two frontier
        // vertices contend for the same edge: plain stores suffice (the
        // atomics are only for cross-phase reuse of the arrays).
        let killed = AtomicU64::new(0);
        frontier.par_iter().for_each(|&v| {
            for &e in g.incident(v) {
                if edge_kill_subround[e as usize].load(Relaxed) != UNPEELED {
                    continue;
                }
                edge_kill_subround[e as usize].store(subround, Relaxed);
                edge_killer[e as usize].store(v, Relaxed);
                killed.fetch_add(1, Relaxed);
                for &w in g.edge(e) {
                    deg[w as usize].fetch_sub(1, Relaxed);
                }
            }
        });

        unpeeled -= frontier.len() as u64;
        let killed = killed.into_inner();
        live_edges -= killed;
        if opts.collect_trace {
            trace.push(SubroundStats {
                subround,
                round: (subround - 1) / parts as u32 + 1,
                subtable: (subround - 1) % parts as u32 + 1,
                peeled_vertices: frontier.len() as u64,
                peeled_edges: killed,
                unpeeled_vertices: unpeeled,
                live_edges,
            });
        }
    }

    SubtableOutcome {
        k,
        subrounds: last_productive,
        rounds: last_productive.div_ceil(parts as u32),
        trace,
        peel_subround: peel_subround.into_iter().map(|a| a.into_inner()).collect(),
        edge_kill_subround: edge_kill_subround
            .into_iter()
            .map(|a| a.into_inner())
            .collect(),
        edge_killer: edge_killer.into_iter().map(|a| a.into_inner()).collect(),
        core_vertices: unpeeled,
        core_edges: live_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::peel_greedy;
    use peel_graph::models::Partitioned;
    use peel_graph::rng::Xoshiro256StarStar;
    use peel_graph::HypergraphBuilder;

    fn tiny_partitioned() -> Hypergraph {
        // 6 vertices in 3 parts: {0,1}, {2,3}, {4,5}.
        let mut b = HypergraphBuilder::new(6, 3).with_partition(3);
        b.push_edge(&[0, 2, 4]);
        b.push_edge(&[1, 2, 5]);
        b.build().unwrap()
    }

    #[test]
    fn peels_tiny_graph() {
        let g = tiny_partitioned();
        let out = peel_subtables(&g, 2, &SubtableOpts::default());
        assert!(out.success());
        assert_eq!(out.core_edges, 0);
        // Subround 1 peels subtable 1 = {0,1}, both degree 1 -> both edges
        // die immediately; remaining vertices peel in subrounds 2 and 3.
        assert_eq!(out.peel_subround[0], 1);
        assert_eq!(out.peel_subround[1], 1);
        assert_eq!(out.subrounds, 3);
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn claims_are_uncontended_and_valid() {
        let mut rng = Xoshiro256StarStar::new(3);
        let g = Partitioned::new(9_000, 0.7, 3).sample(&mut rng);
        let out = peel_subtables(&g, 2, &SubtableOpts::default());
        assert!(out.success());
        for (e, &killer) in out.edge_killer.iter().enumerate() {
            assert_ne!(killer, UNPEELED, "edge {e} must be claimed on success");
            assert!(g.edge(e as u32).contains(&killer));
        }
        // k=2: every vertex claims at most one edge.
        let mut claims = vec![0u32; g.num_vertices()];
        for &killer in &out.edge_killer {
            claims[killer as usize] += 1;
        }
        assert!(claims.iter().all(|&c| c <= 1));
    }

    #[test]
    fn same_core_as_greedy() {
        for &c in &[0.7f64, 0.85] {
            let mut rng = Xoshiro256StarStar::new(4);
            let g = Partitioned::new(20_000, c, 4).sample(&mut rng);
            let greedy = peel_greedy(&g, 2);
            let out = peel_subtables(&g, 2, &SubtableOpts::default());
            assert_eq!(out.core_vertices, greedy.core_vertices, "c={c}");
            assert_eq!(out.core_edges, greedy.core_edges, "c={c}");
        }
    }

    #[test]
    fn subrounds_close_to_recurrence_prediction() {
        // Table 5: r=4, k=2, c=0.7 needs ≈26–27 subrounds at these sizes.
        let mut rng = Xoshiro256StarStar::new(5);
        let g = Partitioned::new(80_000, 0.7, 4).sample(&mut rng);
        let out = peel_subtables(&g, 2, &SubtableOpts::default());
        assert!(out.success());
        assert!(
            out.subrounds >= 22 && out.subrounds <= 32,
            "subrounds = {}",
            out.subrounds
        );
    }

    #[test]
    fn subrounds_beat_r_times_rounds() {
        // Appendix B's point: subrounds ≪ r × plain-rounds.
        use crate::parallel::{peel_parallel, ParallelOpts};
        let mut rng = Xoshiro256StarStar::new(6);
        let g = Partitioned::new(100_000, 0.7, 4).sample(&mut rng);
        let plain = peel_parallel(&g, 2, &ParallelOpts::default());
        let sub = peel_subtables(&g, 2, &SubtableOpts::default());
        assert!(sub.success() && plain.success());
        let naive = 4 * plain.rounds;
        assert!(
            sub.subrounds < naive,
            "subrounds {} should beat naive {}",
            sub.subrounds,
            naive
        );
        // And the ratio should be near the predicted ~1.8–2.1 (allow slack).
        let ratio = sub.subrounds as f64 / plain.rounds as f64;
        assert!(ratio > 1.2 && ratio < 3.0, "inflation ratio {ratio}");
    }

    #[test]
    fn trace_is_consistent() {
        let mut rng = Xoshiro256StarStar::new(7);
        let g = Partitioned::new(8_000, 0.7, 4).sample(&mut rng);
        let out = peel_subtables(&g, 2, &SubtableOpts::default());
        let peeled: u64 = out.trace.iter().map(|s| s.peeled_vertices).sum();
        assert_eq!(peeled + out.core_vertices, 8_000);
        // Survivor series is non-increasing, subround ids strictly increase.
        for w in out.trace.windows(2) {
            assert!(w[1].unpeeled_vertices <= w[0].unpeeled_vertices);
            assert!(w[1].subround > w[0].subround);
        }
        // Round/subtable arithmetic.
        for s in &out.trace {
            assert_eq!(s.round, (s.subround - 1) / 4 + 1);
            assert_eq!(s.subtable, (s.subround - 1) % 4 + 1);
        }
    }

    #[test]
    fn above_threshold_leaves_core() {
        let mut rng = Xoshiro256StarStar::new(8);
        let g = Partitioned::new(40_000, 0.85, 4).sample(&mut rng);
        let out = peel_subtables(&g, 2, &SubtableOpts::default());
        assert!(!out.success());
        let frac = out.core_vertices as f64 / 40_000.0;
        assert!((frac - 0.775).abs() < 0.02, "core fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "partitioned")]
    fn rejects_unpartitioned_graph() {
        let mut b = HypergraphBuilder::new(4, 2);
        b.push_edge(&[0, 1]);
        let g = b.build().unwrap();
        peel_subtables(&g, 2, &SubtableOpts::default());
    }

    #[test]
    fn max_subrounds_truncates() {
        let mut rng = Xoshiro256StarStar::new(9);
        let g = Partitioned::new(20_000, 0.7, 4).sample(&mut rng);
        let out = peel_subtables(
            &g,
            2,
            &SubtableOpts {
                max_subrounds: 5,
                ..Default::default()
            },
        );
        assert!(out.subrounds <= 5);
        assert!(!out.success());
    }
}

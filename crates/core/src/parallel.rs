//! Round-synchronous parallel peeling (Sections 1, 3–5 of the paper).
//!
//! Both strategies implement the same synchronous semantics — a vertex is
//! peeled in round `t` iff it is alive with degree `< k` at the start of
//! round `t` — so they produce identical round counts and survivor series;
//! they differ only in how much work each round performs:
//!
//! * [`Strategy::Dense`] mirrors the paper's GPU implementation: every round
//!   launches one task per vertex (to test the peel condition) and one task
//!   per edge (to test removal). Total work `O((n+m)·rounds)`, perfectly
//!   regular, fully deterministic (each edge is examined by exactly one task
//!   per round, and the recorded claim is the smallest-index peeled
//!   endpoint).
//! * [`Strategy::Frontier`] is the work-efficient CPU variant: each round
//!   touches only the frontier and its incident edges, for `O(n + rm)`
//!   total work across all rounds. Edge removal races are resolved with a
//!   compare-and-swap per edge, so claim winners (but nothing else) are
//!   scheduling-dependent.
//!
//! ## Memory-ordering argument
//!
//! All atomics use `Relaxed` ordering. Correctness does not rest on
//! intra-round ordering: within a phase each location has either a single
//! logical writer (`peeled_round[v]` is written only by the task that owns
//! frontier entry `v`; a dead edge's metadata is written only by the task
//! that won its kill) or commutative RMWs (`fetch_sub` on degrees,
//! `swap`/`compare_exchange` on flags). Cross-phase visibility is provided
//! by rayon's fork-join barriers: every `par_iter` completes (with
//! synchronizes-with edges to the caller) before the next phase starts.

use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering::Relaxed};

use peel_graph::Hypergraph;

use crate::trace::{PeelOutcome, RoundStats, UNPEELED};

/// Work-distribution strategy for [`peel_parallel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// GPU-style full scan of vertices and edges each round; deterministic.
    Dense,
    /// Work-efficient frontier propagation (default).
    #[default]
    Frontier,
}

/// Options for [`peel_parallel`].
#[derive(Debug, Clone)]
pub struct ParallelOpts {
    /// Work-distribution strategy.
    pub strategy: Strategy,
    /// Stop after this many rounds even if not at fixpoint (useful for
    /// "survivors after t rounds" experiments). `u32::MAX` = run to fixpoint.
    pub max_rounds: u32,
    /// Record the per-round [`RoundStats`] trace (cheap; on by default).
    pub collect_trace: bool,
}

impl Default for ParallelOpts {
    fn default() -> Self {
        ParallelOpts {
            strategy: Strategy::Frontier,
            max_rounds: u32::MAX,
            collect_trace: true,
        }
    }
}

/// State shared by both strategies.
struct PeelState {
    deg: Vec<AtomicU32>,
    peeled_round: Vec<AtomicU32>,
    edge_kill_round: Vec<AtomicU32>,
    edge_killer: Vec<AtomicU32>,
}

impl PeelState {
    fn new(g: &Hypergraph) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let deg: Vec<AtomicU32> = (0..n as u32).map(|v| AtomicU32::new(g.degree(v))).collect();
        let peeled_round: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNPEELED)).collect();
        let edge_kill_round: Vec<AtomicU32> = (0..m).map(|_| AtomicU32::new(UNPEELED)).collect();
        let edge_killer: Vec<AtomicU32> = (0..m).map(|_| AtomicU32::new(UNPEELED)).collect();
        PeelState {
            deg,
            peeled_round,
            edge_kill_round,
            edge_killer,
        }
    }

    fn into_outcome(
        self,
        k: u32,
        rounds: u32,
        trace: Vec<RoundStats>,
        unpeeled: u64,
        live_edges: u64,
    ) -> PeelOutcome {
        PeelOutcome {
            k,
            rounds,
            trace,
            peel_round: self
                .peeled_round
                .into_iter()
                .map(|a| a.into_inner())
                .collect(),
            edge_kill_round: self
                .edge_kill_round
                .into_iter()
                .map(|a| a.into_inner())
                .collect(),
            edge_killer: self
                .edge_killer
                .into_iter()
                .map(|a| a.into_inner())
                .collect(),
            core_vertices: unpeeled,
            core_edges: live_edges,
        }
    }
}

/// Peel `g` to its k-core with synchronous parallel rounds.
///
/// Runs on the current rayon thread pool (install a custom pool around the
/// call to control the thread count, e.g. for scaling experiments).
pub fn peel_parallel(g: &Hypergraph, k: u32, opts: &ParallelOpts) -> PeelOutcome {
    assert!(k >= 1, "peeling threshold k must be >= 1");
    match opts.strategy {
        Strategy::Dense => peel_dense(g, k, opts),
        Strategy::Frontier => peel_frontier(g, k, opts),
    }
}

fn peel_dense(g: &Hypergraph, k: u32, opts: &ParallelOpts) -> PeelOutcome {
    let n = g.num_vertices();
    let m = g.num_edges();
    let st = PeelState::new(g);

    let mut trace = Vec::new();
    let mut round = 0u32;
    let mut unpeeled = n as u64;
    let mut live_edges = m as u64;

    while round < opts.max_rounds {
        let next_round = round + 1;

        // Phase 1 (vertex scan): collect the frontier — alive vertices whose
        // start-of-round degree is below k.
        let frontier: Vec<u32> = (0..n as u32)
            .into_par_iter()
            .filter(|&v| {
                st.peeled_round[v as usize].load(Relaxed) == UNPEELED
                    && st.deg[v as usize].load(Relaxed) < k
            })
            .collect();
        if frontier.is_empty() {
            break;
        }
        round = next_round;

        // Phase 2: mark the frontier peeled (before any edge removal, so the
        // edge scan observes a consistent "peeled this round" predicate).
        frontier.par_iter().for_each(|&v| {
            st.peeled_round[v as usize].store(round, Relaxed);
        });

        // Phase 3 (edge scan): every live edge with a peeled endpoint dies;
        // the claim goes to the first peeled endpoint in edge order (all
        // peeled endpoints of a live edge were necessarily peeled *this*
        // round, since an earlier peel would have killed the edge already).
        let killed: u64 = (0..m as u32)
            .into_par_iter()
            .map(|e| {
                if st.edge_kill_round[e as usize].load(Relaxed) != UNPEELED {
                    return 0u64;
                }
                let verts = g.edge(e);
                let killer = verts
                    .iter()
                    .copied()
                    .find(|&w| st.peeled_round[w as usize].load(Relaxed) != UNPEELED);
                let Some(killer) = killer else { return 0 };
                st.edge_kill_round[e as usize].store(round, Relaxed);
                st.edge_killer[e as usize].store(killer, Relaxed);
                for &w in verts {
                    st.deg[w as usize].fetch_sub(1, Relaxed);
                }
                1
            })
            .sum();

        unpeeled -= frontier.len() as u64;
        live_edges -= killed;
        if opts.collect_trace {
            trace.push(RoundStats {
                round,
                peeled_vertices: frontier.len() as u64,
                peeled_edges: killed,
                unpeeled_vertices: unpeeled,
                live_edges,
            });
        }
    }

    st.into_outcome(k, round, trace, unpeeled, live_edges)
}

fn peel_frontier(g: &Hypergraph, k: u32, opts: &ParallelOpts) -> PeelOutcome {
    let n = g.num_vertices();
    let m = g.num_edges();
    let st = PeelState::new(g);
    let edge_alive: Vec<AtomicBool> = (0..m).map(|_| AtomicBool::new(true)).collect();
    let queued: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();

    // Round-1 frontier: dense scan once.
    let mut frontier: Vec<u32> = (0..n as u32)
        .into_par_iter()
        .filter(|&v| st.deg[v as usize].load(Relaxed) < k)
        .collect();

    let mut trace = Vec::new();
    let mut round = 0u32;
    let mut unpeeled = n as u64;
    let mut live_edges = m as u64;

    while !frontier.is_empty() && round < opts.max_rounds {
        round += 1;

        // Phase 1: mark.
        frontier.par_iter().for_each(|&v| {
            st.peeled_round[v as usize].store(round, Relaxed);
        });

        // Phase 2: kill incident edges; each killed edge decrements its
        // endpoints' degrees; endpoints that cross the threshold are claimed
        // (once, via `queued`) for the next frontier.
        let killed = AtomicU64::new(0);
        let next: Vec<u32> = frontier
            .par_iter()
            .fold(Vec::new, |mut acc, &v| {
                for &e in g.incident(v) {
                    // First claimer wins; `swap` is the CAS here.
                    if edge_alive[e as usize].swap(false, Relaxed) {
                        st.edge_kill_round[e as usize].store(round, Relaxed);
                        st.edge_killer[e as usize].store(v, Relaxed);
                        killed.fetch_add(1, Relaxed);
                        for &w in g.edge(e) {
                            let old = st.deg[w as usize].fetch_sub(1, Relaxed);
                            // The decrement that crosses the k boundary (and
                            // any later one) sees old - 1 < k; `queued`
                            // deduplicates, `peeled_round` excludes vertices
                            // peeled this round or earlier.
                            if old - 1 < k
                                && st.peeled_round[w as usize].load(Relaxed) == UNPEELED
                                && !queued[w as usize].swap(true, Relaxed)
                            {
                                acc.push(w);
                            }
                        }
                    }
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });

        unpeeled -= frontier.len() as u64;
        let killed = killed.into_inner();
        live_edges -= killed;
        if opts.collect_trace {
            trace.push(RoundStats {
                round,
                peeled_vertices: frontier.len() as u64,
                peeled_edges: killed,
                unpeeled_vertices: unpeeled,
                live_edges,
            });
        }
        frontier = next;
    }

    st.into_outcome(k, round, trace, unpeeled, live_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::{peel_greedy, peel_rounds_serial};
    use peel_graph::models::{Gnm, Partitioned};
    use peel_graph::rng::Xoshiro256StarStar;
    use peel_graph::HypergraphBuilder;

    fn both_strategies() -> [ParallelOpts; 2] {
        [
            ParallelOpts {
                strategy: Strategy::Dense,
                ..Default::default()
            },
            ParallelOpts {
                strategy: Strategy::Frontier,
                ..Default::default()
            },
        ]
    }

    fn path5() -> Hypergraph {
        let mut b = HypergraphBuilder::new(5, 2);
        b.push_edge(&[0, 1]);
        b.push_edge(&[1, 2]);
        b.push_edge(&[2, 3]);
        b.push_edge(&[3, 4]);
        b.build().unwrap()
    }

    #[test]
    fn path_rounds_match_both_strategies() {
        for opts in both_strategies() {
            let out = peel_parallel(&path5(), 2, &opts);
            assert!(out.success());
            assert_eq!(out.rounds, 3, "{:?}", opts.strategy);
            assert_eq!(out.peel_round, vec![1, 2, 3, 2, 1]);
            assert_eq!(out.survivor_series(), vec![3, 1, 0]);
        }
    }

    #[test]
    fn agrees_with_serial_reference_on_random_graphs() {
        for seed in 0..5u64 {
            let mut rng = Xoshiro256StarStar::new(seed);
            let g = Gnm::new(3000, 0.75, 3).sample(&mut rng);
            let reference = peel_rounds_serial(&g, 2);
            for opts in both_strategies() {
                let out = peel_parallel(&g, 2, &opts);
                assert_eq!(out.rounds, reference.rounds, "seed {seed}");
                assert_eq!(out.peel_round, reference.peel_round, "seed {seed}");
                assert_eq!(out.edge_kill_round, reference.edge_kill_round);
                assert_eq!(out.core_vertices, reference.core_vertices);
                assert_eq!(
                    out.survivor_series(),
                    reference.survivor_series(),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_greedy_core() {
        for seed in 0..4u64 {
            let mut rng = Xoshiro256StarStar::new(100 + seed);
            let g = Gnm::new(2000, 0.9, 4).sample(&mut rng); // above c*_{2,4}: core likely
            let greedy = peel_greedy(&g, 2);
            for opts in both_strategies() {
                let out = peel_parallel(&g, 2, &opts);
                assert_eq!(out.core_vertices, greedy.core_vertices);
                assert_eq!(out.core_edges, greedy.core_edges);
            }
        }
    }

    #[test]
    fn k3_core_agreement() {
        for seed in 0..3u64 {
            let mut rng = Xoshiro256StarStar::new(200 + seed);
            let g = Gnm::new(2000, 1.4, 3).sample(&mut rng); // near c*_{3,3}
            let greedy = peel_greedy(&g, 3);
            for opts in both_strategies() {
                let out = peel_parallel(&g, 3, &opts);
                assert_eq!(out.core_vertices, greedy.core_vertices, "seed {seed}");
            }
        }
    }

    #[test]
    fn below_threshold_succeeds_with_loglog_rounds() {
        let mut rng = Xoshiro256StarStar::new(7);
        let g = Gnm::new(100_000, 0.70, 4).sample(&mut rng);
        let out = peel_parallel(&g, 2, &ParallelOpts::default());
        assert!(out.success());
        // Table 1: ~12.9 rounds at n = 80k–160k.
        assert!(
            out.rounds >= 10 && out.rounds <= 16,
            "rounds = {}",
            out.rounds
        );
    }

    #[test]
    fn above_threshold_fails_with_nonempty_core() {
        let mut rng = Xoshiro256StarStar::new(8);
        let g = Gnm::new(100_000, 0.85, 4).sample(&mut rng);
        let out = peel_parallel(&g, 2, &ParallelOpts::default());
        assert!(!out.success());
        // Section 4 / Table 2: the core holds ≈ 77.5% of vertices at c=0.85.
        let frac = out.core_vertices as f64 / 100_000.0;
        assert!((frac - 0.775).abs() < 0.01, "core fraction {frac}");
    }

    #[test]
    fn max_rounds_truncates() {
        let mut rng = Xoshiro256StarStar::new(9);
        let g = Gnm::new(50_000, 0.70, 4).sample(&mut rng);
        let opts = ParallelOpts {
            max_rounds: 3,
            ..Default::default()
        };
        let out = peel_parallel(&g, 2, &opts);
        assert_eq!(out.rounds, 3);
        assert!(!out.success()); // truncated before the fixpoint
        let full = peel_parallel(&g, 2, &ParallelOpts::default());
        // The 3-round survivor count matches the full run's trace.
        assert_eq!(
            out.trace.last().unwrap().unpeeled_vertices,
            full.trace[2].unpeeled_vertices
        );
    }

    #[test]
    fn dense_claims_are_deterministic_endpoints() {
        let mut rng = Xoshiro256StarStar::new(10);
        let g = Gnm::new(5000, 0.7, 3).sample(&mut rng);
        let opts = ParallelOpts {
            strategy: Strategy::Dense,
            ..Default::default()
        };
        let a = peel_parallel(&g, 2, &opts);
        let b = peel_parallel(&g, 2, &opts);
        assert_eq!(
            a.edge_killer, b.edge_killer,
            "dense engine is deterministic"
        );
        for (e, &killer) in a.edge_killer.iter().enumerate() {
            if killer != UNPEELED {
                assert!(g.edge(e as u32).contains(&killer));
            }
        }
    }

    #[test]
    fn frontier_claims_are_valid_k2() {
        let mut rng = Xoshiro256StarStar::new(11);
        let g = Gnm::new(5000, 0.7, 3).sample(&mut rng);
        let out = peel_parallel(&g, 2, &ParallelOpts::default());
        // k=2 invariant: each vertex claims at most one edge, claimed in the
        // round the vertex was peeled.
        let mut claims = vec![0u32; g.num_vertices()];
        for (e, (&killer, &kround)) in out
            .edge_killer
            .iter()
            .zip(out.edge_kill_round.iter())
            .enumerate()
        {
            if killer != UNPEELED {
                claims[killer as usize] += 1;
                assert!(g.edge(e as u32).contains(&killer));
                assert_eq!(out.peel_round[killer as usize], kround);
            }
        }
        assert!(claims.iter().all(|&c| c <= 1), "k=2: one claim per vertex");
    }

    #[test]
    fn works_on_partitioned_graphs_too() {
        let mut rng = Xoshiro256StarStar::new(12);
        let g = Partitioned::new(40_000, 0.70, 4).sample(&mut rng);
        let out = peel_parallel(&g, 2, &ParallelOpts::default());
        assert!(out.success());
    }

    #[test]
    fn trace_disabled_still_counts_rounds() {
        let g = path5();
        let opts = ParallelOpts {
            collect_trace: false,
            ..Default::default()
        };
        let out = peel_parallel(&g, 2, &opts);
        assert_eq!(out.rounds, 3);
        assert!(out.trace.is_empty());
    }
}

//! Round-synchronous parallel peeling (Sections 1, 3–5 of the paper),
//! direction-optimizing and allocation-free in steady state.
//!
//! All strategies implement the same synchronous semantics — a vertex is
//! peeled in round `t` iff it is alive with degree `< k` at the start of
//! round `t` — so they produce identical round counts, per-round peel
//! counts, and survivor series; they differ only in how much work each
//! round performs:
//!
//! * [`Strategy::Dense`] mirrors the paper's GPU implementation: every round
//!   launches one task per vertex (to test the peel condition) and one task
//!   per edge (to test removal). Total work `O((n+m)·rounds)`, perfectly
//!   regular, fully deterministic (each edge is examined by exactly one task
//!   per round, and the recorded claim is the smallest-index peeled
//!   endpoint).
//! * [`Strategy::Frontier`] is the work-efficient CPU variant: each round
//!   touches only the frontier and its incident edges, for `O(n + rm)`
//!   total work across all rounds. Edge removal races are resolved with an
//!   atomic test-and-clear per edge, so claim winners (but nothing else)
//!   are scheduling-dependent.
//! * [`Strategy::Adaptive`] (the default) switches per round between the two
//!   kill phases, Beamer-style direction optimization: early rounds with a
//!   broad frontier take the dense edge scan (sequential memory traffic, no
//!   claim contention); as the frontier collapses — and below the threshold
//!   it collapses doubly exponentially — rounds switch to frontier
//!   propagation and stop paying the full-table scan. See
//!   [`ADAPTIVE_DENSE_ALPHA`] for the switch rule.
//!
//! Every engine runs out of a [`PeelWorkspace`]: degrees, peel rounds, kill
//! metadata, the alive/peeled/queued bitsets, the frontier, striped
//! per-thread collection buffers, and striped decrement counters are
//! allocated once and reused across runs ([`peel_parallel_in`]); the next
//! frontier is gathered into the striped buffers and merged by offset
//! instead of the old `fold(Vec::new)` / `reduce(append)` churn.
//!
//! ## Cache-conscious data path
//!
//! Both kill phases are laid out so the hot loops stream memory instead of
//! chasing it:
//!
//! * the dense phase walks the flat endpoint table sequentially, tests
//!   peeled-ness in the packed `peeled` bitset (one cache line covers 512
//!   vertices), and *batches* degree decrements into per-task
//!   [`StripedCounters`] stripes (plain load+store on thread-private
//!   lines) — one post-barrier merge per round applies the summed deltas
//!   and detects every threshold crossing exactly, replacing two atomic
//!   RMWs per endpoint (`fetch_sub` + `queued` test-and-set) with none;
//! * the frontier phase reads each vertex's CSR *adjacency run*
//!   ([`Hypergraph::adjacency`]) — edge id and other endpoints inlined in
//!   one contiguous region — instead of bouncing between the incidence
//!   and endpoint tables, and batches the vertex's own decrements into a
//!   single `fetch_sub`;
//! * both phases issue software prefetches (`peel-graph`'s
//!   [`peel_graph::prefetch`]) a few iterations ahead for the
//!   data-dependent reads the hardware prefetcher cannot predict.
//!
//! ## Memory-ordering argument
//!
//! All atomics use `Relaxed` ordering. Correctness does not rest on
//! intra-round ordering: within a phase each location has either a single
//! logical writer (`peel_round[v]` is written only by the task that owns
//! frontier entry `v`; a dead edge's metadata is written only by the task
//! that won its kill; a decrement stripe is written only by the task that
//! owns it, and a merged vertex block only by its merge task) or
//! commutative RMWs (`fetch_sub` on degrees, `fetch_or`/`fetch_and` on the
//! bitset words). The bitsets pack 64 flags per atomic word, so two tasks
//! claiming *different* edges may now RMW the *same* word — that is still
//! a commutative update of disjoint bits, and the winner of any single bit
//! is decided by the one `fetch_and` that observed it set, exactly as the
//! old per-edge `AtomicBool::swap` did. Cross-phase visibility is provided
//! by rayon's fork-join barriers: every `par_iter` completes (with
//! synchronizes-with edges to the caller) before the next phase starts —
//! in particular the dense kill barrier orders every stripe write before
//! the merge that reads it (the protocol checked by the striped-counter
//! loom model in `peel-graph`).

use rayon::prelude::*;
// ordering: Relaxed throughout — writes are idempotent claims (every
// racer stores the same round number), single-winner bitset RMWs, or
// commutative degree updates, and rounds are separated by rayon
// fork-join barriers that carry the cross-round happens-before (see the
// module docs above for the full argument).
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};

use peel_graph::bits::{AtomicBitset, Striped, StripedCounters};
use peel_graph::Hypergraph;

use crate::trace::{PeelOutcome, RoundStats};
use crate::workspace::{PeelRun, PeelWorkspace};

/// Work-distribution strategy for [`peel_parallel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// GPU-style full scan of vertices and edges each round; deterministic.
    Dense,
    /// Work-efficient frontier propagation.
    Frontier,
    /// Direction-optimizing: dense edge scan while the frontier is broad,
    /// frontier propagation once it collapses (default).
    #[default]
    Adaptive,
}

/// [`Strategy::Adaptive`]'s default switch coefficient: a round takes the
/// dense edge scan when the frontier's expected incident endpoints
/// (`|F| · m·r/n`, i.e. frontier size × average degree — the propagation
/// cost) exceed `1/α` of the dense scan's cost (`m` bitset probes plus
/// `live·r` endpoint loads), with `α =` this constant. Rearranged to the
/// division-free integer test in [`adaptive_picks_dense`]. Larger α holds
/// the dense direction longer.
///
/// Re-fit against the CSR/striped-counter engine with `alpha_sweep`
/// (α ∈ {2..48} × `Gnm(n, c, 4)` for n ∈ {10⁵, 4×10⁵}, c ∈ {0.70, 0.85},
/// warm-up + interleaved best-of-block): the CSR rewrite cheapened *both*
/// directions, but the frontier walk gained more — sequential adjacency
/// runs replaced its per-edge pointer chasing, while the dense scan still
/// pays the full `m`-edge sweep plus the striped-counter merge every
/// round — so the crossover moved *down*, from the old fit's 8 to ≈ 4:
/// α = 4 tracks within 2% of the best measured α at every benched (n, c)
/// and beats pure Frontier at all of them, where the α = 8 fit (from the
/// pre-CSR box) held the dense direction rounds too long and lost to
/// serial at n = 4×10⁵, c = 0.70 — the `adaptive 379 ns/edge vs serial
/// 324` regression in BENCH_service.json. Re-run `alpha_sweep` after any
/// change to the kill phases' per-edge costs; override per workspace
/// through [`PeelWorkspace::adaptive_alpha`].
pub const ADAPTIVE_DENSE_ALPHA: u64 = 4;

/// The per-round direction decision of [`Strategy::Adaptive`]:
/// `true` = dense edge scan, `false` = frontier propagation. Exposed so
/// tests and benches can audit which direction a recorded round took.
/// `alpha` is the switch coefficient (a [`PeelWorkspace::adaptive_alpha`],
/// typically [`ADAPTIVE_DENSE_ALPHA`]).
#[inline]
pub fn adaptive_picks_dense(
    frontier_len: u64,
    n: u64,
    m: u64,
    r: u64,
    live_edges: u64,
    alpha: u64,
) -> bool {
    // frontier_len · (m·r/n) · α  >  m + live·r, division-free. u128: the
    // left side multiplies four u64s that can each be large.
    (frontier_len as u128) * (m as u128) * (r as u128) * (alpha as u128)
        > (n as u128) * ((m as u128) + (live_edges as u128) * (r as u128))
}

/// Options for [`peel_parallel`].
#[derive(Debug, Clone)]
pub struct ParallelOpts {
    /// Work-distribution strategy.
    pub strategy: Strategy,
    /// Stop after this many rounds even if not at fixpoint (useful for
    /// "survivors after t rounds" experiments). `u32::MAX` = run to fixpoint.
    pub max_rounds: u32,
    /// Record the per-round [`RoundStats`] trace (cheap; on by default).
    pub collect_trace: bool,
}

impl Default for ParallelOpts {
    fn default() -> Self {
        ParallelOpts {
            strategy: Strategy::Adaptive,
            max_rounds: u32::MAX,
            collect_trace: true,
        }
    }
}

/// Peel `g` to its k-core with synchronous parallel rounds, using a
/// throwaway workspace.
///
/// Runs on the current rayon thread pool (install a custom pool around the
/// call to control the thread count, e.g. for scaling experiments). For
/// repeated peeling, keep a [`PeelWorkspace`] and call
/// [`peel_parallel_in`] — this wrapper allocates the full working set per
/// call.
pub fn peel_parallel(g: &Hypergraph, k: u32, opts: &ParallelOpts) -> PeelOutcome {
    let mut ws = PeelWorkspace::new();
    let run = peel_parallel_in(g, k, opts, &mut ws);
    ws.outcome(&run)
}

/// Peel `g` to its k-core inside `ws`, reusing its buffers.
///
/// Steady-state allocation-free: once `ws` has peeled a graph with at
/// least as many vertices/edges, no call touches the allocator. The
/// per-vertex/per-edge results stay in `ws` (accessors, or
/// [`PeelWorkspace::outcome`] to materialize them).
pub fn peel_parallel_in(
    g: &Hypergraph,
    k: u32,
    opts: &ParallelOpts,
    ws: &mut PeelWorkspace,
) -> PeelRun {
    assert!(k >= 1, "peeling threshold k must be >= 1");
    ws.reset_for(g);
    let n = g.num_vertices();
    let m = g.num_edges();
    let alpha = ws.adaptive_alpha;
    let PeelWorkspace {
        deg,
        peel_round,
        peeled,
        edge_kill_round,
        edge_killer,
        edge_alive,
        queued,
        frontier,
        stripes,
        dec,
        trace,
        ..
    } = ws;

    // Round-1 frontier: dense vertex scan (all strategies start here; no
    // cheaper source of the initial sub-threshold set exists).
    collect_frontier_scan(g, k, deg, peeled, stripes, frontier);

    let mut round = 0u32;
    let mut unpeeled = n as u64;
    let mut live_edges = m as u64;

    while !frontier.is_empty() && round < opts.max_rounds {
        round += 1;

        // Phase 1: mark the frontier peeled (before any edge removal, so
        // the kill phase observes a consistent "peeled this round"
        // predicate). The packed `peeled` bit is what the kill phases
        // test; `peel_round` carries the round number for the outputs.
        frontier.par_iter().for_each(|&v| {
            peel_round[v as usize].store(round, Relaxed);
            peeled.set(v as usize);
        });

        // Direction choice for this round's kill phase. Pure strategies
        // pin it; Adaptive compares the frontier's expected incident
        // endpoints against the live endpoints (see
        // [`ADAPTIVE_DENSE_ALPHA`]).
        let dense = match opts.strategy {
            Strategy::Dense => true,
            Strategy::Frontier => false,
            Strategy::Adaptive => adaptive_picks_dense(
                frontier.len() as u64,
                n as u64,
                m as u64,
                g.arity() as u64,
                live_edges,
                alpha,
            ),
        };
        // Pure Dense rediscovers each frontier by vertex scan (that full
        // rescan is its documented work profile); the other strategies
        // collect crossing vertices during the kill phase.
        let collect_next = opts.strategy != Strategy::Dense;

        // Phase 2: kill edges incident to the frontier.
        let killed = if dense {
            kill_dense(
                g,
                k,
                round,
                deg,
                peeled,
                edge_kill_round,
                edge_killer,
                edge_alive,
                dec,
                stripes,
                collect_next,
            )
        } else {
            kill_frontier(
                g,
                k,
                round,
                frontier,
                deg,
                peeled,
                edge_kill_round,
                edge_killer,
                edge_alive,
                queued,
                stripes,
            )
        };

        unpeeled -= frontier.len() as u64;
        live_edges -= killed;
        // Structured per-round trace for a live subscriber (flight
        // recorder). Behind the `enabled` gate so an untraced run pays
        // one relaxed load per round, not field packing.
        if tracing::enabled() {
            tracing::event(
                "peel_round",
                &[
                    ("round", round.into()),
                    ("peeled", (frontier.len() as u64).into()),
                    ("killed", killed.into()),
                    ("unpeeled", unpeeled.into()),
                    ("live_edges", live_edges.into()),
                    ("dense", dense.into()),
                ],
            );
        }
        if opts.collect_trace {
            trace.push(RoundStats {
                round,
                peeled_vertices: frontier.len() as u64,
                peeled_edges: killed,
                unpeeled_vertices: unpeeled,
                live_edges,
            });
        }

        // Phase 3: assemble the next frontier (skipped when max_rounds
        // truncates the run here).
        frontier.clear();
        if round < opts.max_rounds {
            if collect_next {
                stripes.drain_into(frontier);
            } else {
                collect_frontier_scan(g, k, deg, peeled, stripes, frontier);
            }
        }
    }

    PeelRun {
        k,
        rounds: round,
        core_vertices: unpeeled,
        core_edges: live_edges,
    }
}

/// How many edges ahead the dense kill phase prefetches its endpoints'
/// peeled-bitset words (the only data-dependent reads on its hot path).
const DENSE_PREFETCH_AHEAD: usize = 8;

/// How many frontier entries ahead the frontier kill phase prefetches the
/// adjacency run (the per-vertex region all its reads come from).
const FRONTIER_PREFETCH_AHEAD: usize = 4;

/// Dense vertex scan: gather every alive vertex with degree `< k` into
/// `out` via the striped buffers (source order per stripe, stripes merged
/// by offset — no per-round allocation).
fn collect_frontier_scan(
    g: &Hypergraph,
    k: u32,
    deg: &[AtomicU32],
    peeled: &AtomicBitset,
    stripes: &mut Striped<u32>,
    out: &mut Vec<u32>,
) {
    let n = g.num_vertices();
    {
        let stripes = &*stripes;
        (0..n as u32).into_par_iter().for_each(|v| {
            if !peeled.get(v as usize) && deg[v as usize].load(Relaxed) < k {
                stripes
                    .lock(Striped::<u32>::stripe_of(v as usize, n))
                    .push(v);
            }
        });
    }
    stripes.drain_into(out);
}

/// Dense kill phase: contiguous edge ranges, one per decrement stripe; a
/// live edge with a peeled endpoint dies, claimed by its first peeled
/// endpoint in edge order (all peeled endpoints of a live edge were
/// necessarily peeled *this* round, since an earlier peel would have
/// killed the edge already). Degree decrements are *batched* into the
/// task's own [`StripedCounters`] stripe — no atomic RMW per endpoint —
/// and a post-barrier merge applies the summed deltas. With
/// `collect_next`, the merge also collects the next frontier *exactly*:
/// every unpeeled vertex has degree ≥ k when the round starts (anything
/// below the threshold was collected into an earlier frontier and
/// peeled), so a merged degree < k identifies precisely the vertices that
/// crossed this round, each seen by exactly one merge task — no `queued`
/// dedup bitset needed on this path.
#[allow(clippy::too_many_arguments)] // engine phase over one shared state bundle
fn kill_dense(
    g: &Hypergraph,
    k: u32,
    round: u32,
    deg: &[AtomicU32],
    peeled: &AtomicBitset,
    edge_kill_round: &[AtomicU32],
    edge_killer: &[AtomicU32],
    edge_alive: &AtomicBitset,
    dec: &StripedCounters,
    stripes: &Striped<u32>,
    collect_next: bool,
) -> u64 {
    let m = g.num_edges();
    let r = g.arity();
    let endpoints = g.endpoints_flat();
    let nstripes = dec.stripes();
    let killed = AtomicU64::new(0);
    // Accumulate phase: stripe `s` owns edges `s*m/S .. (s+1)*m/S` and is
    // the single writer of decrement stripe `s`. `with_min_len(1)` makes
    // the S-element dispatch actually split (S is far below the shim's
    // default inline threshold).
    (0..nstripes).into_par_iter().with_min_len(1).for_each(|s| {
        let lo = s * m / nstripes;
        let hi = (s + 1) * m / nstripes;
        let mut local_killed = 0u64;
        for e in lo..hi {
            // The endpoint table streams sequentially; the peeled-bit
            // probes are the data-dependent reads, so issue them a few
            // edges early.
            if e + DENSE_PREFETCH_AHEAD < hi {
                let base = (e + DENSE_PREFETCH_AHEAD) * r;
                for &w in &endpoints[base..base + r] {
                    peeled.prefetch_bit(w as usize);
                }
            }
            // Exactly one task examines each edge per round: plain
            // loads and stores suffice, the alive bit is only cleared
            // (never contended) here.
            if !edge_alive.get(e) {
                continue;
            }
            let verts = &endpoints[e * r..e * r + r];
            let Some(&killer) = verts.iter().find(|&&w| peeled.get(w as usize)) else {
                continue;
            };
            edge_alive.clear(e);
            edge_kill_round[e].store(round, Relaxed);
            edge_killer[e].store(killer, Relaxed);
            local_killed += 1;
            for &w in verts {
                dec.add(s, w as usize);
            }
        }
        if local_killed > 0 {
            killed.fetch_add(local_killed, Relaxed);
        }
    });

    // Merge phase (the accumulate barrier has passed): sum each touched
    // vertex's stripes, apply the delta, and detect threshold crossings.
    // Merge tasks own disjoint block ranges, so degree updates are plain
    // load/store and each crossing vertex is pushed exactly once.
    let n = g.num_vertices();
    let blocks = dec.num_blocks();
    (0..blocks).into_par_iter().with_min_len(8).for_each(|b| {
        dec.drain_block(b, |v, delta| {
            let old = deg[v].load(Relaxed);
            debug_assert!(
                old >= delta,
                "degree underflow at vertex {v}: merged decrement {delta} exceeds degree {old} \
                 (graph built with repeated endpoints beyond its incidence table?)"
            );
            let new = old - delta;
            deg[v].store(new, Relaxed);
            if collect_next && new < k && !peeled.get(v) {
                stripes.lock(Striped::<u32>::stripe_of(v, n)).push(v as u32);
            }
        });
    });
    killed.into_inner()
}

/// Frontier kill phase: each frontier vertex streams its CSR adjacency
/// run — edge id and the other endpoints inlined in one contiguous
/// region — claiming live edges via an atomic test-and-clear on the
/// edge-alive bitset (first claimer wins), decrementing the *other*
/// endpoints as it goes (its own decrements are batched into one
/// `fetch_sub` at the end: a frontier vertex is already peeled, so it can
/// never re-cross the threshold), and queues endpoints that cross the
/// threshold for the next frontier.
#[allow(clippy::too_many_arguments)] // engine phase over one shared state bundle
fn kill_frontier(
    g: &Hypergraph,
    k: u32,
    round: u32,
    frontier: &[u32],
    deg: &[AtomicU32],
    peeled: &AtomicBitset,
    edge_kill_round: &[AtomicU32],
    edge_killer: &[AtomicU32],
    edge_alive: &AtomicBitset,
    queued: &AtomicBitset,
    stripes: &Striped<u32>,
) -> u64 {
    let len = frontier.len();
    let r = g.arity();
    let killed = AtomicU64::new(0);
    frontier.par_iter().enumerate().for_each(|(i, &v)| {
        // The adjacency run of a later frontier entry is this loop's only
        // unpredictable read region; hint it a few entries ahead.
        if let Some(&ahead) = frontier.get(i + FRONTIER_PREFETCH_AHEAD) {
            g.prefetch_adjacency(ahead);
        }
        // One stripe guard per frontier vertex, taken lazily on the first
        // queued discovery.
        let mut pushed = None;
        let mut local_killed = 0u64;
        for run in g.adjacency(v).chunks_exact(r) {
            let e = run[0] as usize;
            // First claimer wins; the bitset test-and-clear is the CAS.
            if edge_alive.test_and_clear(e) {
                edge_kill_round[e].store(round, Relaxed);
                edge_killer[e].store(v, Relaxed);
                local_killed += 1;
                for &w in &run[1..] {
                    let old = deg[w as usize].fetch_sub(1, Relaxed);
                    debug_assert!(
                        old > 0,
                        "degree underflow at vertex {w}: edge {e} decremented past zero \
                         (graph built with repeated endpoints beyond its incidence table?)"
                    );
                    // The decrement that crosses the k boundary (and any
                    // later one) sees old - 1 < k; `queued` deduplicates,
                    // `peeled` excludes vertices peeled this round or
                    // earlier.
                    if old - 1 < k && !peeled.get(w as usize) && !queued.test_and_set(w as usize) {
                        pushed
                            .get_or_insert_with(|| stripes.lock(Striped::<u32>::stripe_of(i, len)))
                            .push(w);
                    }
                }
            }
        }
        if local_killed > 0 {
            // v's own decrement for each edge it claimed, batched; other
            // claimants of v's edges decrement v through their runs'
            // "other endpoint" entries as usual.
            let old = deg[v as usize].fetch_sub(local_killed as u32, Relaxed);
            debug_assert!(old >= local_killed as u32, "degree underflow at vertex {v}");
            killed.fetch_add(local_killed, Relaxed);
        }
    });
    killed.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::{peel_greedy, peel_rounds_serial};
    use crate::trace::UNPEELED;
    use peel_graph::models::{Gnm, Partitioned};
    use peel_graph::rng::Xoshiro256StarStar;
    use peel_graph::HypergraphBuilder;

    fn all_strategies() -> [ParallelOpts; 3] {
        [
            ParallelOpts {
                strategy: Strategy::Dense,
                ..Default::default()
            },
            ParallelOpts {
                strategy: Strategy::Frontier,
                ..Default::default()
            },
            ParallelOpts {
                strategy: Strategy::Adaptive,
                ..Default::default()
            },
        ]
    }

    fn path5() -> Hypergraph {
        let mut b = HypergraphBuilder::new(5, 2);
        b.push_edge(&[0, 1]);
        b.push_edge(&[1, 2]);
        b.push_edge(&[2, 3]);
        b.push_edge(&[3, 4]);
        b.build().unwrap()
    }

    #[test]
    fn path_rounds_match_all_strategies() {
        for opts in all_strategies() {
            let out = peel_parallel(&path5(), 2, &opts);
            assert!(out.success());
            assert_eq!(out.rounds, 3, "{:?}", opts.strategy);
            assert_eq!(out.peel_round, vec![1, 2, 3, 2, 1]);
            assert_eq!(out.survivor_series(), vec![3, 1, 0]);
        }
    }

    #[test]
    fn agrees_with_serial_reference_on_random_graphs() {
        for seed in 0..5u64 {
            let mut rng = Xoshiro256StarStar::new(seed);
            let g = Gnm::new(3000, 0.75, 3).sample(&mut rng);
            let reference = peel_rounds_serial(&g, 2);
            for opts in all_strategies() {
                let out = peel_parallel(&g, 2, &opts);
                assert_eq!(out.rounds, reference.rounds, "seed {seed}");
                assert_eq!(out.peel_round, reference.peel_round, "seed {seed}");
                assert_eq!(out.edge_kill_round, reference.edge_kill_round);
                assert_eq!(out.core_vertices, reference.core_vertices);
                assert_eq!(
                    out.survivor_series(),
                    reference.survivor_series(),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_greedy_core() {
        for seed in 0..4u64 {
            let mut rng = Xoshiro256StarStar::new(100 + seed);
            let g = Gnm::new(2000, 0.9, 4).sample(&mut rng); // above c*_{2,4}: core likely
            let greedy = peel_greedy(&g, 2);
            for opts in all_strategies() {
                let out = peel_parallel(&g, 2, &opts);
                assert_eq!(out.core_vertices, greedy.core_vertices);
                assert_eq!(out.core_edges, greedy.core_edges);
            }
        }
    }

    #[test]
    fn k3_core_agreement() {
        for seed in 0..3u64 {
            let mut rng = Xoshiro256StarStar::new(200 + seed);
            let g = Gnm::new(2000, 1.4, 3).sample(&mut rng); // near c*_{3,3}
            let greedy = peel_greedy(&g, 3);
            for opts in all_strategies() {
                let out = peel_parallel(&g, 3, &opts);
                assert_eq!(out.core_vertices, greedy.core_vertices, "seed {seed}");
            }
        }
    }

    #[test]
    fn below_threshold_succeeds_with_loglog_rounds() {
        let mut rng = Xoshiro256StarStar::new(7);
        let g = Gnm::new(100_000, 0.70, 4).sample(&mut rng);
        let out = peel_parallel(&g, 2, &ParallelOpts::default());
        assert!(out.success());
        // Table 1: ~12.9 rounds at n = 80k–160k.
        assert!(
            out.rounds >= 10 && out.rounds <= 16,
            "rounds = {}",
            out.rounds
        );
    }

    #[test]
    fn above_threshold_fails_with_nonempty_core() {
        let mut rng = Xoshiro256StarStar::new(8);
        let g = Gnm::new(100_000, 0.85, 4).sample(&mut rng);
        let out = peel_parallel(&g, 2, &ParallelOpts::default());
        assert!(!out.success());
        // Section 4 / Table 2: the core holds ≈ 77.5% of vertices at c=0.85.
        let frac = out.core_vertices as f64 / 100_000.0;
        assert!((frac - 0.775).abs() < 0.01, "core fraction {frac}");
    }

    #[test]
    fn max_rounds_truncates() {
        let mut rng = Xoshiro256StarStar::new(9);
        let g = Gnm::new(50_000, 0.70, 4).sample(&mut rng);
        for strategy in [Strategy::Dense, Strategy::Frontier, Strategy::Adaptive] {
            let opts = ParallelOpts {
                strategy,
                max_rounds: 3,
                ..Default::default()
            };
            let out = peel_parallel(&g, 2, &opts);
            assert_eq!(out.rounds, 3);
            assert!(!out.success()); // truncated before the fixpoint
            let full = peel_parallel(
                &g,
                2,
                &ParallelOpts {
                    strategy,
                    ..Default::default()
                },
            );
            // The 3-round survivor count matches the full run's trace.
            assert_eq!(
                out.trace.last().unwrap().unpeeled_vertices,
                full.trace[2].unpeeled_vertices
            );
        }
    }

    #[test]
    fn dense_claims_are_deterministic_endpoints() {
        let mut rng = Xoshiro256StarStar::new(10);
        let g = Gnm::new(5000, 0.7, 3).sample(&mut rng);
        let opts = ParallelOpts {
            strategy: Strategy::Dense,
            ..Default::default()
        };
        let a = peel_parallel(&g, 2, &opts);
        let b = peel_parallel(&g, 2, &opts);
        assert_eq!(
            a.edge_killer, b.edge_killer,
            "dense engine is deterministic"
        );
        for (e, &killer) in a.edge_killer.iter().enumerate() {
            if killer != UNPEELED {
                assert!(g.edge(e as u32).contains(&killer));
            }
        }
    }

    #[test]
    fn frontier_claims_are_valid_k2() {
        let mut rng = Xoshiro256StarStar::new(11);
        let g = Gnm::new(5000, 0.7, 3).sample(&mut rng);
        for opts in all_strategies() {
            let out = peel_parallel(&g, 2, &opts);
            // k=2 invariant: each vertex claims at most one edge, claimed in
            // the round the vertex was peeled.
            let mut claims = vec![0u32; g.num_vertices()];
            for (e, (&killer, &kround)) in out
                .edge_killer
                .iter()
                .zip(out.edge_kill_round.iter())
                .enumerate()
            {
                if killer != UNPEELED {
                    claims[killer as usize] += 1;
                    assert!(g.edge(e as u32).contains(&killer));
                    assert_eq!(out.peel_round[killer as usize], kround);
                }
            }
            assert!(claims.iter().all(|&c| c <= 1), "k=2: one claim per vertex");
        }
    }

    #[test]
    fn works_on_partitioned_graphs_too() {
        let mut rng = Xoshiro256StarStar::new(12);
        let g = Partitioned::new(40_000, 0.70, 4).sample(&mut rng);
        let out = peel_parallel(&g, 2, &ParallelOpts::default());
        assert!(out.success());
    }

    #[test]
    fn trace_disabled_still_counts_rounds() {
        let g = path5();
        let opts = ParallelOpts {
            collect_trace: false,
            ..Default::default()
        };
        let out = peel_parallel(&g, 2, &opts);
        assert_eq!(out.rounds, 3);
        assert!(out.trace.is_empty());
    }

    #[test]
    fn workspace_reuse_is_stable_across_runs_and_sizes() {
        // One workspace peels a large graph, then a smaller one, then the
        // large one again (buffer shrink + regrow paths); every run must
        // match a fresh-workspace reference exactly.
        let mut ws = PeelWorkspace::new();
        let mut rng = Xoshiro256StarStar::new(21);
        let big = Gnm::new(20_000, 0.72, 4).sample(&mut rng);
        let small = Gnm::new(500, 0.9, 3).sample(&mut rng);
        for g in [&big, &small, &big, &small] {
            let reference = peel_rounds_serial(g, 2);
            for strategy in [Strategy::Dense, Strategy::Frontier, Strategy::Adaptive] {
                let opts = ParallelOpts {
                    strategy,
                    ..Default::default()
                };
                let run = peel_parallel_in(g, 2, &opts, &mut ws);
                assert_eq!(run.rounds, reference.rounds);
                assert_eq!(run.core_vertices, reference.core_vertices);
                assert_eq!(run.core_edges, reference.core_edges);
                let out = ws.outcome(&run);
                assert_eq!(out.peel_round, reference.peel_round);
                assert_eq!(out.edge_kill_round, reference.edge_kill_round);
                assert_eq!(ws.trace().len(), reference.trace.len());
            }
        }
    }

    #[test]
    fn workspace_reuse_after_truncated_run() {
        // A max_rounds-truncated run leaves partial state (and, for the
        // propagating strategies, a collected-but-unused next frontier);
        // the following full run on the same workspace must be unaffected.
        let mut rng = Xoshiro256StarStar::new(22);
        let g = Gnm::new(10_000, 0.70, 4).sample(&mut rng);
        let reference = peel_rounds_serial(&g, 2);
        let mut ws = PeelWorkspace::new();
        for strategy in [Strategy::Dense, Strategy::Frontier, Strategy::Adaptive] {
            let truncated = ParallelOpts {
                strategy,
                max_rounds: 2,
                ..Default::default()
            };
            let run = peel_parallel_in(&g, 2, &truncated, &mut ws);
            assert_eq!(run.rounds, 2);
            let full = ParallelOpts {
                strategy,
                ..Default::default()
            };
            let run = peel_parallel_in(&g, 2, &full, &mut ws);
            assert_eq!(run.rounds, reference.rounds, "{strategy:?}");
            assert_eq!(run.core_vertices, reference.core_vertices);
        }
    }

    #[test]
    fn repeated_endpoint_edges_do_not_underflow_degrees() {
        // Regression (ISSUE 4 satellite): an edge listing the same vertex
        // twice contributes two incidence slots to it, so the kill-phase
        // decrement runs twice for one edge — the engines must neither
        // underflow the degree counter (the debug_assert in the kill
        // phases) nor disagree with the serial reference. Such graphs only
        // arise via `skip_distinct_check`; the builder rejects them by
        // default.
        let mut b = HypergraphBuilder::new(6, 2).skip_distinct_check();
        b.push_edge(&[0, 0]); // self-loop: deg(0) = 2
        b.push_edge(&[0, 1]);
        b.push_edge(&[1, 2]);
        b.push_edge(&[3, 3]); // isolated self-loop component
        b.push_edge(&[4, 5]);
        let g = b.build().unwrap();
        let reference = peel_rounds_serial(&g, 2);
        for opts in all_strategies() {
            let out = peel_parallel(&g, 2, &opts);
            assert_eq!(out.rounds, reference.rounds, "{:?}", opts.strategy);
            assert_eq!(out.peel_round, reference.peel_round, "{:?}", opts.strategy);
            assert_eq!(out.edge_kill_round, reference.edge_kill_round);
            assert_eq!(out.core_vertices, reference.core_vertices);
        }
        // Larger randomized variant with a sprinkle of duplicate-endpoint
        // edges, k = 3 to exercise multi-decrement crossings.
        let mut rng = Xoshiro256StarStar::new(23);
        let base = Gnm::new(2_000, 1.2, 3).sample(&mut rng);
        let mut b = HypergraphBuilder::new(2_000, 3).skip_distinct_check();
        for (_, vs) in base.edges() {
            b.push_edge(vs);
        }
        for i in 0..50u32 {
            let v = (i * 37) % 2_000;
            b.push_edge(&[v, v, (v + 1) % 2_000]);
        }
        let g = b.build().unwrap();
        let reference = peel_rounds_serial(&g, 3);
        for opts in all_strategies() {
            let out = peel_parallel(&g, 3, &opts);
            assert_eq!(out.peel_round, reference.peel_round, "{:?}", opts.strategy);
        }
    }

    #[test]
    fn adaptive_uses_both_directions_below_threshold() {
        // Sanity check on the direction heuristic itself: at c = 0.70 the
        // peel avalanche broadens the frontier mid-cascade (dense pays
        // off there — with the post-CSR α = 4 fit the early rounds stay
        // frontier and the switch fires at the cascade peak) and the tail
        // rounds collapse it (propagation pays off). The switch rule must
        // select dense somewhere and frontier by the end — otherwise
        // "adaptive" is silently degenerate. The exact per-round
        // decisions are pinned in tests/adaptive_modes.rs.
        let mut rng = Xoshiro256StarStar::new(24);
        let g = Gnm::new(50_000, 0.70, 4).sample(&mut rng);
        let out = peel_parallel(&g, 2, &ParallelOpts::default());
        assert!(out.success());
        let n = g.num_vertices() as u64;
        let m = g.num_edges() as u64;
        let r = g.arity() as u64;
        let mut live = m;
        let mut modes = Vec::new();
        for s in &out.trace {
            modes.push(adaptive_picks_dense(
                s.peeled_vertices,
                n,
                m,
                r,
                live,
                ADAPTIVE_DENSE_ALPHA,
            ));
            live -= s.peeled_edges;
        }
        assert!(
            modes.iter().any(|&d| d),
            "some round should take the dense direction"
        );
        assert!(
            !modes.last().unwrap(),
            "final rounds should take the frontier direction"
        );
    }
}

//! Sequential peeling engines.
//!
//! Two variants:
//!
//! * [`peel_greedy`] — the classic worklist peeler: pop any vertex of degree
//!   `< k`, remove it and its incident edges, push newly sub-threshold
//!   vertices. Total work `O(n + rm)`; no notion of rounds. This is the
//!   serial baseline the paper's GPU implementation is compared against.
//! * [`peel_rounds_serial`] — a *level-synchronized* serial peeler with the
//!   exact same synchronous semantics (and output format) as the parallel
//!   engines. It runs the frontier algorithm on one thread, so it is the
//!   reference implementation tests compare the parallel engines against,
//!   and the cheapest way to run thousands of simulation trials (each trial
//!   on its own rayon task).

use peel_graph::Hypergraph;

use crate::trace::{PeelOutcome, RoundStats, UNPEELED};

/// Greedy sequential peeling. Returns the peel order, per-edge claims, and
/// the k-core — but no round structure (the greedy order is not round
/// faithful).
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// The `k` threshold used.
    pub k: u32,
    /// Vertices in the order they were peeled.
    pub peel_order: Vec<u32>,
    /// For each edge, the vertex that claimed it (UNPEELED for core edges).
    pub edge_killer: Vec<u32>,
    /// Position in `peel_order` at which each edge was removed (UNPEELED
    /// sentinel value for core edges).
    pub edge_kill_pos: Vec<u32>,
    /// Number of vertices left in the k-core.
    pub core_vertices: u64,
    /// Number of edges left in the k-core.
    pub core_edges: u64,
}

impl GreedyOutcome {
    /// Did peeling reach the empty k-core?
    #[inline]
    pub fn success(&self) -> bool {
        self.core_vertices == 0
    }
}

/// Classic queue-based sequential peeling to the k-core.
pub fn peel_greedy(g: &Hypergraph, k: u32) -> GreedyOutcome {
    assert!(k >= 1, "peeling threshold k must be >= 1");
    let n = g.num_vertices();
    let m = g.num_edges();

    let mut deg: Vec<u32> = (0..n as u32).map(|v| g.degree(v)).collect();
    let mut peeled = vec![false; n];
    let mut edge_alive = vec![true; m];
    let mut edge_killer = vec![UNPEELED; m];
    let mut edge_kill_pos = vec![UNPEELED; m];
    let mut peel_order: Vec<u32> = Vec::with_capacity(n);

    // Seed the worklist with all initially sub-threshold vertices.
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| deg[v as usize] < k).collect();

    while let Some(v) = queue.pop() {
        if peeled[v as usize] {
            continue;
        }
        peeled[v as usize] = true;
        let pos = peel_order.len() as u32;
        peel_order.push(v);
        for &e in g.incident(v) {
            if !edge_alive[e as usize] {
                continue;
            }
            edge_alive[e as usize] = false;
            edge_killer[e as usize] = v;
            edge_kill_pos[e as usize] = pos;
            for &w in g.edge(e) {
                deg[w as usize] -= 1;
                if !peeled[w as usize] && deg[w as usize] < k {
                    queue.push(w);
                }
            }
        }
    }

    let core_vertices = peeled.iter().filter(|&&p| !p).count() as u64;
    let core_edges = edge_alive.iter().filter(|&&a| a).count() as u64;
    GreedyOutcome {
        k,
        peel_order,
        edge_killer,
        edge_kill_pos,
        core_vertices,
        core_edges,
    }
}

/// Ids of the k-core vertices of `g` (empty iff peeling succeeds).
pub fn kcore_vertices(g: &Hypergraph, k: u32) -> Vec<u32> {
    let out = peel_greedy(g, k);
    let mut peeled = vec![false; g.num_vertices()];
    for &v in &out.peel_order {
        peeled[v as usize] = true;
    }
    (0..g.num_vertices() as u32)
        .filter(|&v| !peeled[v as usize])
        .collect()
}

/// Level-synchronized serial peeling: identical semantics and output as the
/// parallel engines (same rounds, same survivor series), run on one thread.
pub fn peel_rounds_serial(g: &Hypergraph, k: u32) -> PeelOutcome {
    assert!(k >= 1);
    let n = g.num_vertices();
    let m = g.num_edges();

    let mut deg: Vec<u32> = (0..n as u32).map(|v| g.degree(v)).collect();
    let mut peel_round = vec![UNPEELED; n];
    let mut edge_kill_round = vec![UNPEELED; m];
    let mut edge_killer = vec![UNPEELED; m];
    let mut queued = vec![false; n];

    // Round-1 frontier: all initially sub-threshold vertices.
    let mut frontier: Vec<u32> = (0..n as u32).filter(|&v| deg[v as usize] < k).collect();
    for &v in &frontier {
        queued[v as usize] = true;
    }

    let mut trace = Vec::new();
    let mut round = 0u32;
    let mut unpeeled = n as u64;
    let mut live_edges = m as u64;
    let mut next: Vec<u32> = Vec::new();

    while !frontier.is_empty() {
        round += 1;
        // Mark the whole frontier as peeled *before* any edge removal, so
        // that newly sub-threshold vertices discovered during this round are
        // deferred to the next one (synchronous semantics).
        for &v in &frontier {
            peel_round[v as usize] = round;
        }
        let mut edges_killed = 0u64;
        for &v in &frontier {
            for &e in g.incident(v) {
                if edge_kill_round[e as usize] != UNPEELED {
                    continue;
                }
                edge_kill_round[e as usize] = round;
                edge_killer[e as usize] = v;
                edges_killed += 1;
                for &w in g.edge(e) {
                    deg[w as usize] -= 1;
                    if peel_round[w as usize] == UNPEELED
                        && deg[w as usize] < k
                        && !queued[w as usize]
                    {
                        queued[w as usize] = true;
                        next.push(w);
                    }
                }
            }
        }
        unpeeled -= frontier.len() as u64;
        live_edges -= edges_killed;
        trace.push(RoundStats {
            round,
            peeled_vertices: frontier.len() as u64,
            peeled_edges: edges_killed,
            unpeeled_vertices: unpeeled,
            live_edges,
        });
        frontier.clear();
        std::mem::swap(&mut frontier, &mut next);
    }

    PeelOutcome {
        k,
        rounds: round,
        trace,
        peel_round,
        edge_kill_round,
        edge_killer,
        core_vertices: unpeeled,
        core_edges: live_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peel_graph::HypergraphBuilder;

    /// Path 0-1-2-3-4 as a 2-uniform graph.
    fn path5() -> Hypergraph {
        let mut b = HypergraphBuilder::new(5, 2);
        b.push_edge(&[0, 1]);
        b.push_edge(&[1, 2]);
        b.push_edge(&[2, 3]);
        b.push_edge(&[3, 4]);
        b.build().unwrap()
    }

    /// Triangle 0-1-2 plus pendant 3 attached to 0.
    fn triangle_with_tail() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4, 2);
        b.push_edge(&[0, 1]);
        b.push_edge(&[1, 2]);
        b.push_edge(&[2, 0]);
        b.push_edge(&[0, 3]);
        b.build().unwrap()
    }

    #[test]
    fn greedy_peels_path_completely() {
        let g = path5();
        let out = peel_greedy(&g, 2);
        assert!(out.success());
        assert_eq!(out.peel_order.len(), 5);
        assert_eq!(out.core_edges, 0);
        // Every edge has a valid killer that is one of its endpoints.
        for (e, &killer) in out.edge_killer.iter().enumerate() {
            assert!(g.edge(e as u32).contains(&killer));
        }
    }

    #[test]
    fn greedy_finds_triangle_core() {
        let g = triangle_with_tail();
        let out = peel_greedy(&g, 2);
        assert!(!out.success());
        assert_eq!(out.core_vertices, 3);
        assert_eq!(out.core_edges, 3);
        assert_eq!(out.peel_order, vec![3]); // only the pendant is peeled
        assert_eq!(kcore_vertices(&g, 2), vec![0, 1, 2]);
    }

    #[test]
    fn serial_rounds_on_path() {
        // Path of 5 peels ends-inward: rounds = 3.
        let out = peel_rounds_serial(&path5(), 2);
        assert!(out.success());
        assert_eq!(out.rounds, 3);
        assert_eq!(out.peel_round, vec![1, 2, 3, 2, 1]);
        assert_eq!(out.survivor_series(), vec![3, 1, 0]);
    }

    #[test]
    fn serial_rounds_trace_is_consistent() {
        let out = peel_rounds_serial(&path5(), 2);
        let total_peeled: u64 = out.trace.iter().map(|s| s.peeled_vertices).sum();
        assert_eq!(total_peeled + out.core_vertices, 5);
        let total_edges: u64 = out.trace.iter().map(|s| s.peeled_edges).sum();
        assert_eq!(total_edges + out.core_edges, 4);
        assert_eq!(out.trace.last().unwrap().live_edges, out.core_edges);
    }

    #[test]
    fn serial_rounds_on_triangle_tail() {
        let out = peel_rounds_serial(&triangle_with_tail(), 2);
        assert!(!out.success());
        assert_eq!(out.rounds, 1);
        assert_eq!(out.core_vertices, 3);
        assert_eq!(out.peel_round[3], 1);
        assert_eq!(out.peel_round[0], UNPEELED);
    }

    #[test]
    fn k3_star_graph() {
        // Star: center 0 with 4 leaves; k=2 peels everything in 2 rounds
        // (leaves have degree 1; after they go the center has degree 0).
        let mut b = HypergraphBuilder::new(5, 2);
        for leaf in 1..5 {
            b.push_edge(&[0, leaf]);
        }
        let g = b.build().unwrap();
        let out = peel_rounds_serial(&g, 2);
        assert!(out.success());
        // Leaves AND the center peel in round 1? No: center has degree 4.
        assert_eq!(out.rounds, 2);
        assert_eq!(out.peel_round[0], 2);
    }

    #[test]
    fn k1_peels_only_isolated() {
        // k = 1: only isolated (degree-0) vertices peel.
        let g = triangle_with_tail();
        let out = peel_greedy(&g, 1);
        assert_eq!(out.peel_order.len(), 0);
        assert_eq!(out.core_vertices, 4);
        // With an isolated vertex added:
        let mut b = HypergraphBuilder::new(5, 2);
        b.push_edge(&[0, 1]);
        b.push_edge(&[1, 2]);
        b.push_edge(&[2, 0]);
        let g = b.build().unwrap();
        let out = peel_greedy(&g, 1);
        // vertices 3 and 4 are isolated
        assert_eq!(out.peel_order.len(), 2);
    }

    #[test]
    fn greedy_claims_unique_for_k2() {
        // For k = 2 every peeled vertex claims at most one edge.
        let g = path5();
        let out = peel_greedy(&g, 2);
        let mut claims_per_vertex = [0u32; 5];
        for &killer in &out.edge_killer {
            if killer != UNPEELED {
                claims_per_vertex[killer as usize] += 1;
            }
        }
        assert!(claims_per_vertex.iter().all(|&c| c <= 1));
    }

    #[test]
    fn empty_graph() {
        let g = HypergraphBuilder::new(4, 2).build().unwrap();
        let out = peel_rounds_serial(&g, 2);
        assert!(out.success());
        assert_eq!(out.rounds, 1); // one round peels all 4 isolated vertices
        let out = peel_greedy(&g, 2);
        assert_eq!(out.peel_order.len(), 4);
    }

    #[test]
    fn three_uniform_hyperedges() {
        // One 3-edge {0,1,2} and one {2,3,4}: every vertex has degree <= 2.
        // k=2: vertices 0,1,3,4 have degree 1 -> peel round 1, killing both
        // edges; vertex 2 peels round 2.
        let mut b = HypergraphBuilder::new(5, 3);
        b.push_edge(&[0, 1, 2]);
        b.push_edge(&[2, 3, 4]);
        let g = b.build().unwrap();
        let out = peel_rounds_serial(&g, 2);
        assert!(out.success());
        assert_eq!(out.rounds, 2);
        assert_eq!(out.peel_round, vec![1, 1, 2, 1, 1]);
        // Both edges die in round 1.
        assert_eq!(out.edge_kill_round, vec![1, 1]);
    }
}

//! Property-based tests for the IBLT: recovery correctness under arbitrary
//! signed-set contents (the structure's contract: net multiplicity of each
//! key in {−1, 0, +1} at recovery time), serial/parallel agreement, and
//! subtraction algebra.

use proptest::prelude::*;
use std::collections::BTreeMap;

use peel_iblt::cell::{fold48, Cell, SwarCell};
use peel_iblt::{reconcile, AtomicIblt, Iblt, IbltConfig, IbltHasher};

/// A signed set: each key appears with net +1 or −1 (0-net keys are
/// represented by inserting *and* deleting them, exercising cancellation).
#[derive(Debug, Clone)]
struct Content {
    /// key → net sign (+1 / −1)
    net: BTreeMap<u64, i64>,
    /// keys churned through the table with net 0
    churn: Vec<u64>,
}

fn arb_content(max_live: usize, max_churn: usize) -> impl Strategy<Value = Content> {
    (
        proptest::collection::btree_map(
            0u64..5_000,
            prop_oneof![Just(1i64), Just(-1)],
            0..max_live,
        ),
        proptest::collection::vec(5_000u64..10_000, 0..max_churn),
    )
        .prop_map(|(net, churn)| Content { net, churn })
}

fn load(t: &Iblt, content: &Content) -> Iblt {
    let mut t = t.clone();
    for (&k, &sign) in &content.net {
        if sign > 0 {
            t.insert(k);
        } else {
            t.delete(k);
        }
    }
    for &k in &content.churn {
        t.insert(k);
        t.delete(k);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever recovery returns is genuine: positive keys have net +1,
    /// negative keys −1, nothing is reported twice, and a complete
    /// recovery lists the entire net content.
    #[test]
    fn recovery_is_sound(content in arb_content(60, 30)) {
        let cfg = IbltConfig::new(3, 200, 7);
        let t = load(&Iblt::new(cfg), &content);
        let out = t.recover();

        for &k in &out.positive {
            prop_assert_eq!(content.net.get(&k), Some(&1), "false positive {}", k);
        }
        for &k in &out.negative {
            prop_assert_eq!(content.net.get(&k), Some(&-1), "false negative {}", k);
        }
        let mut all: Vec<u64> = out.positive.iter().chain(&out.negative).copied().collect();
        let len_before = all.len();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), len_before, "key reported twice");

        if out.complete {
            prop_assert_eq!(
                out.positive.len() + out.negative.len(),
                content.net.len(),
                "complete recovery must list the whole net content"
            );
        }
    }

    /// The exact characterization from the paper: recovery completes **iff**
    /// the 2-core of the key/cell hypergraph is empty (checksum collisions
    /// aside, probability ~2^-64). Cross-validated against `peel-core`'s
    /// independent k-core computation. This also pins down the finite-size
    /// failure the paper remarks on (two keys sharing all r cells form an
    /// unpeelable duplicate-edge pair — proptest finds such pairs at these
    /// tiny table sizes).
    #[test]
    fn decode_completes_iff_2core_empty(
        keys in proptest::collection::btree_set(any::<u64>(), 0..100),
    ) {
        let cfg = IbltConfig::new(3, 70, 3); // 210 cells for ≤100 keys
        let hasher = IbltHasher::new(&cfg);
        let mut t = Iblt::new(cfg);
        let mut builder =
            peel_graph::HypergraphBuilder::new(cfg.total_cells(), cfg.hashes)
                .skip_distinct_check();
        for &k in &keys {
            t.insert(k);
            let cells: Vec<u32> = (0..cfg.hashes)
                .map(|j| hasher.global_cell(j, k) as u32)
                .collect();
            builder.push_edge(&cells);
        }
        let graph = builder.build().unwrap();
        let core_empty = peel_core::kcore_vertices(&graph, 2).is_empty();

        let out = t.recover();
        prop_assert_eq!(
            out.complete,
            core_empty,
            "decode completeness must coincide with 2-core emptiness"
        );
        if out.complete {
            prop_assert_eq!(out.positive.len(), keys.len());
        }
    }

    /// Parallel (dense and frontier) and serial recovery return identical
    /// key sets on any in-contract content.
    #[test]
    fn parallel_matches_serial(content in arb_content(80, 20)) {
        let cfg = IbltConfig::new(3, 250, 11);
        let serial_table = load(&Iblt::new(cfg), &content);
        let s = serial_table.recover();

        let dense = AtomicIblt::from_serial(&serial_table).par_recover();
        let frontier = AtomicIblt::from_serial(&serial_table).par_recover_frontier();
        for par in [dense, frontier] {
            prop_assert_eq!(s.complete, par.complete);
            let mut sp = s.positive.clone();
            sp.sort_unstable();
            let mut pp = par.positive.clone();
            pp.sort_unstable();
            prop_assert_eq!(sp, pp);
            let mut sn = s.negative.clone();
            sn.sort_unstable();
            let mut pn = par.negative.clone();
            pn.sort_unstable();
            prop_assert_eq!(sn, pn);
        }
    }

    /// a − b decodes to the symmetric difference whenever it decodes at
    /// all; and (a − b) mirrored equals (b − a).
    #[test]
    fn subtraction_algebra(
        a_keys in proptest::collection::btree_set(0u64..5_000, 0..50),
        b_keys in proptest::collection::btree_set(0u64..5_000, 0..50),
    ) {
        let a_keys: Vec<u64> = a_keys.into_iter().collect();
        let b_keys: Vec<u64> = b_keys.into_iter().collect();

        let cfg = IbltConfig::new(3, 220, 13);
        let mut a = Iblt::new(cfg);
        for &k in &a_keys { a.insert(k); }
        let mut b = Iblt::new(cfg);
        for &k in &b_keys { b.insert(k); }

        let d1 = reconcile(&a, &b);
        let d2 = reconcile(&b, &a);
        prop_assert_eq!(d1.complete, d2.complete);
        prop_assert_eq!(&d1.only_in_a, &d2.only_in_b);
        prop_assert_eq!(&d1.only_in_b, &d2.only_in_a);

        if d1.complete {
            let want_a: Vec<u64> =
                a_keys.iter().filter(|k| !b_keys.contains(k)).copied().collect();
            let want_b: Vec<u64> =
                b_keys.iter().filter(|k| !a_keys.contains(k)).copied().collect();
            prop_assert_eq!(d1.only_in_a, want_a);
            prop_assert_eq!(d1.only_in_b, want_b);
        } else {
            for k in &d1.only_in_a {
                prop_assert!(a_keys.contains(k) && !b_keys.contains(k));
            }
            for k in &d1.only_in_b {
                prop_assert!(b_keys.contains(k) && !a_keys.contains(k));
            }
        }
    }

    /// The packed SWAR cell tracks the scalar cell bit for bit under any
    /// signed update sequence: folding per update equals folding the
    /// scalar accumulator once at the end (fold48 linearity), and the
    /// count, emptiness, and purity views agree at every prefix.
    #[test]
    fn swar_fold_matches_scalar_cell(
        ops in proptest::collection::vec((any::<u64>(), prop_oneof![Just(1i64), Just(-1)]), 0..200),
    ) {
        let hasher = IbltHasher::new(&IbltConfig::new(3, 64, 23));
        let mut scalar = Cell::default();
        let mut swar = SwarCell::default();
        for &(key, dir) in &ops {
            let check = hasher.checksum(key);
            scalar.apply(key, check, dir);
            swar.apply(key, fold48(check), dir);
            prop_assert_eq!(swar, scalar.to_swar());
            prop_assert_eq!(swar.count(), scalar.count);
            prop_assert_eq!(swar.is_empty(), scalar.is_empty());
            prop_assert_eq!(swar.is_pure(&hasher), scalar.is_pure(&hasher));
        }
    }

    /// Insert-then-delete of the same key sequence always leaves a
    /// completely empty, trivially decodable table.
    #[test]
    fn perfect_cancellation(keys in proptest::collection::vec(any::<u64>(), 0..100)) {
        let cfg = IbltConfig::new(4, 64, 17);
        let mut t = Iblt::new(cfg);
        for &k in &keys { t.insert(k); }
        for &k in &keys { t.delete(k); }
        prop_assert!(t.cells().iter().all(|c| c.is_empty()));
        let out = t.recover();
        prop_assert!(out.complete);
        prop_assert!(out.positive.is_empty() && out.negative.is_empty());
    }
}

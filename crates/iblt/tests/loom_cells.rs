//! Exhaustive interleaving models for the atomic IBLT cell protocol.
//!
//! Build and run with `RUSTFLAGS="--cfg loom" cargo test -p peel-iblt
//! --test loom_cells`. The paper's concurrent-update model (Section 6)
//! rests on one claim: cell updates — `fetch_add` on `count`,
//! `fetch_xor` on the sums — commute, so any interleaving of insert and
//! delete traffic leaves the table in the same state as some serial
//! order. These models check that claim at `Relaxed` under every
//! schedule (within the preemption bound), including stale relaxed
//! reads, which is exactly what the CUDA atomic-XOR kernels the code
//! mirrors must survive.
//!
//! Models use the serial per-key `insert`/`delete` entry points, not the
//! rayon `par_*` wrappers: rayon pool threads are outside the model
//! scheduler. The wrappers add only work splitting, no new cell ops.

#![cfg(loom)]

use loom::sync::Arc;
use peel_iblt::{AtomicIblt, AtomicKvIblt, Iblt, IbltConfig, KvIblt};

fn cfg() -> IbltConfig {
    // Two subtables of two cells each: the smallest geometry where two
    // keys can collide in one cell while differing in another.
    IbltConfig::new(2, 2, 0x5eed)
}

/// Racing insert ∥ delete of different keys must land in the same state
/// as the serial order — no lost cell update under any interleaving.
#[test]
fn insert_delete_commute_with_serial_order() {
    loom::model(|| {
        let t = Arc::new(AtomicIblt::new(cfg()));
        let th = {
            let t = Arc::clone(&t);
            loom::thread::spawn(move || t.insert(1))
        };
        t.delete(2);
        th.join().unwrap();

        let mut serial = Iblt::new(cfg());
        serial.insert(1);
        serial.delete(2);
        assert_eq!(t.snapshot(), serial, "racing cell RMWs must commute");
    });
}

/// Racing inserts of *colliding* keys: XOR sums and counts must both
/// survive contention on the same cells.
#[test]
fn colliding_inserts_commute() {
    loom::model(|| {
        let t = Arc::new(AtomicIblt::new(cfg()));
        let th = {
            let t = Arc::clone(&t);
            loom::thread::spawn(move || t.insert(3))
        };
        t.insert(4);
        th.join().unwrap();

        let mut serial = Iblt::new(cfg());
        serial.insert(4);
        serial.insert(3);
        assert_eq!(t.snapshot(), serial);
        // Whatever peeling can or cannot decode from this tiny geometry,
        // it must decode identically from both (the tables are equal).
        let par = t.snapshot().recover();
        let ser = serial.recover();
        assert_eq!(par.complete, ser.complete);
        assert_eq!(par.positive, ser.positive);
    });
}

/// A snapshot racing a single insert sees each *sum* either before or
/// after that insert's RMW on it — per-cell tearing across the three
/// sums is allowed (and documented on `snapshot`), but every observed
/// count must be a value the modification order actually contained.
#[test]
fn concurrent_snapshot_reads_are_per_sum_atomic() {
    loom::model(|| {
        let t = Arc::new(AtomicIblt::new(IbltConfig::new(2, 2, 9)));
        let th = {
            let t = Arc::clone(&t);
            loom::thread::spawn(move || t.insert(5))
        };
        let racing = t.snapshot();
        th.join().unwrap();
        for c in racing.cells() {
            assert!(c.count == 0 || c.count == 1, "count can only be 0 or 1");
        }
        // After the join fence the snapshot is exact.
        let mut serial = Iblt::new(*t.config());
        serial.insert(5);
        assert_eq!(t.snapshot(), serial);
    });
}

/// The key-value table carries a fourth XOR sum (`value_sum`) through
/// the same protocol; racing upsert traffic must commute identically.
#[test]
fn kv_insert_delete_commute_with_serial_order() {
    loom::model(|| {
        let t = Arc::new(AtomicKvIblt::new(cfg()));
        let th = {
            let t = Arc::clone(&t);
            loom::thread::spawn(move || t.insert(1, 10))
        };
        t.delete(2, 20);
        th.join().unwrap();

        let mut serial = KvIblt::new(cfg());
        serial.insert(1, 10);
        serial.delete(2, 20);
        assert_eq!(t.snapshot(), serial);
    });
}

//! Concurrency-primitive indirection for model checking.
//!
//! Built normally, this re-exports the `std::sync::atomic` cell types
//! the atomic IBLTs use. Built with `RUSTFLAGS="--cfg loom"`, the same
//! names resolve to the vendored loom shims so `loom::model` can
//! exhaustively check cell RMW commutativity (see tests/loom_cells.rs);
//! outside a model the shims delegate straight back to `std`.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicI64, AtomicU64};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicI64, AtomicU64};

//! IBLT sizing and configuration.

/// Configuration shared by all IBLT variants.
///
/// The table has `hashes` subtables of `cells_per_table` cells each; a key
/// occupies one cell per subtable. All hash functions derive from `seed`,
/// so two IBLTs with equal configs are *compatible*: they can be subtracted
/// for set reconciliation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IbltConfig {
    /// Number of hash functions / subtables (`r` in the paper; ≥ 2,
    /// practical values 3–5).
    pub hashes: usize,
    /// Cells per subtable.
    pub cells_per_table: usize,
    /// Seed from which all hash functions are derived.
    pub seed: u64,
}

impl IbltConfig {
    /// Config with an explicit per-subtable cell count.
    pub fn new(hashes: usize, cells_per_table: usize, seed: u64) -> Self {
        assert!(hashes >= 2, "need at least 2 hash functions");
        assert!(cells_per_table >= 1);
        IbltConfig {
            hashes,
            cells_per_table,
            seed,
        }
    }

    /// Config with (at least) `total_cells` cells split across `hashes`
    /// subtables (rounds up to a multiple of `hashes`).
    pub fn with_total_cells(hashes: usize, total_cells: usize, seed: u64) -> Self {
        assert!(hashes >= 2);
        let per_table = total_cells.div_ceil(hashes).max(1);
        IbltConfig::new(hashes, per_table, seed)
    }

    /// Config sized so that `items` keys give table load ≈ `load`
    /// (items / total cells). Choose `load` comfortably below the peeling
    /// threshold `c*_{2,r}` (≈0.818 for r=3, ≈0.772 for r=4) for reliable
    /// recovery.
    pub fn for_load(hashes: usize, items: usize, load: f64, seed: u64) -> Self {
        assert!(load > 0.0 && load < 1.0, "load must be in (0,1)");
        let total = ((items as f64 / load).ceil() as usize).max(hashes);
        IbltConfig::with_total_cells(hashes, total, seed)
    }

    /// Total number of cells across all subtables.
    pub fn total_cells(&self) -> usize {
        self.hashes * self.cells_per_table
    }

    /// The table load a given number of items would produce.
    pub fn load_for_items(&self, items: usize) -> f64 {
        items as f64 / self.total_cells() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cells_and_load() {
        let cfg = IbltConfig::new(3, 100, 1);
        assert_eq!(cfg.total_cells(), 300);
        assert!((cfg.load_for_items(150) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn with_total_cells_rounds_up() {
        let cfg = IbltConfig::with_total_cells(4, 1001, 1);
        assert_eq!(cfg.cells_per_table, 251);
        assert!(cfg.total_cells() >= 1001);
    }

    #[test]
    fn for_load_produces_requested_load() {
        let cfg = IbltConfig::for_load(3, 700, 0.7, 1);
        let load = cfg.load_for_items(700);
        assert!(load <= 0.7 + 1e-9, "load {load}");
        assert!(load > 0.65, "not wildly oversized: {load}");
    }

    #[test]
    #[should_panic]
    fn rejects_single_hash() {
        IbltConfig::new(1, 100, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_load() {
        IbltConfig::for_load(3, 100, 1.5, 0);
    }
}

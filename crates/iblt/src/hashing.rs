//! Hash functions for IBLT cell placement and checksums.
//!
//! Each subtable `j` gets an independent hash `h_j(key) ∈ [cells_per_table]`
//! derived from the config seed via SplitMix-style mixing; the checksum is a
//! full-width 64-bit hash under a separate seed. Cell indices use the
//! multiply-shift range reduction (no modulo bias beyond 2^-64).

use crate::config::IbltConfig;

/// The 64-bit SplitMix/Murmur3 finalizer (bijective mixer).
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Precomputed hash state for one IBLT configuration.
#[derive(Debug, Clone)]
pub struct IbltHasher {
    table_seeds: Vec<u64>,
    check_seed: u64,
    cells_per_table: usize,
}

impl IbltHasher {
    /// Derive the hasher from a config.
    pub fn new(cfg: &IbltConfig) -> Self {
        let table_seeds = (0..cfg.hashes)
            .map(|j| mix64(cfg.seed ^ mix64(j as u64 + 1)))
            .collect();
        IbltHasher {
            table_seeds,
            check_seed: mix64(cfg.seed ^ 0xc3a5_c85c_97cb_3127),
            cells_per_table: cfg.cells_per_table,
        }
    }

    /// Number of subtables.
    #[inline]
    pub fn tables(&self) -> usize {
        self.table_seeds.len()
    }

    /// Cell index of `key` *within* subtable `j` (in `0..cells_per_table`).
    #[inline]
    pub fn cell_in_table(&self, j: usize, key: u64) -> usize {
        let h = mix64(key ^ self.table_seeds[j]);
        // Multiply-shift range reduction.
        ((h as u128 * self.cells_per_table as u128) >> 64) as usize
    }

    /// Global (flat) cell index of `key` in subtable `j`.
    #[inline]
    pub fn global_cell(&self, j: usize, key: u64) -> usize {
        j * self.cells_per_table + self.cell_in_table(j, key)
    }

    /// Checksum of a key (full 64-bit).
    #[inline]
    pub fn checksum(&self, key: u64) -> u64 {
        mix64(key ^ self.check_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hasher() -> IbltHasher {
        IbltHasher::new(&IbltConfig::new(4, 1000, 77))
    }

    #[test]
    fn cells_in_range() {
        let h = hasher();
        for key in 0..5000u64 {
            for j in 0..4 {
                assert!(h.cell_in_table(j, key) < 1000);
                let g = h.global_cell(j, key);
                assert!(g >= j * 1000 && g < (j + 1) * 1000);
            }
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = hasher();
        let b = hasher();
        for key in [0u64, 1, u64::MAX, 0xdeadbeef] {
            assert_eq!(a.checksum(key), b.checksum(key));
            for j in 0..4 {
                assert_eq!(a.cell_in_table(j, key), b.cell_in_table(j, key));
            }
        }
    }

    #[test]
    fn tables_are_independent() {
        // The same key should land in different offsets across tables
        // (at least usually): check not all equal over a sample.
        let h = hasher();
        let mut all_same = 0;
        for key in 0..1000u64 {
            let c0 = h.cell_in_table(0, key);
            if (1..4).all(|j| h.cell_in_table(j, key) == c0) {
                all_same += 1;
            }
        }
        assert!(
            all_same <= 1,
            "tables look correlated ({all_same} collisions)"
        );
    }

    #[test]
    fn seeds_change_placement() {
        let a = IbltHasher::new(&IbltConfig::new(3, 1000, 1));
        let b = IbltHasher::new(&IbltConfig::new(3, 1000, 2));
        let differing = (0..1000u64)
            .filter(|&key| a.cell_in_table(0, key) != b.cell_in_table(0, key))
            .count();
        assert!(differing > 900, "only {differing} placements changed");
    }

    #[test]
    fn placement_is_roughly_uniform() {
        let h = hasher();
        let mut counts = vec![0u32; 1000];
        for key in 0..100_000u64 {
            counts[h.cell_in_table(0, key)] += 1;
        }
        let mean = 100.0;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean) * (c as f64 - mean))
            .sum::<f64>()
            / 1000.0;
        // Poisson-like: variance ≈ mean.
        assert!((var - mean).abs() < mean * 0.3, "variance {var} vs {mean}");
    }

    #[test]
    fn checksum_of_zero_key_is_nonzero() {
        // Guards the pure-cell test for key 0.
        assert_ne!(hasher().checksum(0), 0);
    }
}

//! Lock-sharded IBLT — the ablation baseline for the atomic-cell design.
//!
//! The paper notes that atomic operations "can be a bottleneck in any
//! parallel implementation". The natural alternative on a CPU is striped
//! locking: guard groups of cells with `parking_lot::Mutex` shards. This
//! module implements that variant so the benchmark suite can quantify the
//! design choice (see `peel-bench`'s `iblt_bench`); the atomic variant in
//! [`crate::parallel`] is the recommended one.

use parking_lot::Mutex;
use rayon::prelude::*;

use crate::cell::Cell;
use crate::config::IbltConfig;
use crate::hashing::IbltHasher;
use crate::serial::Iblt;

const SHARD_BITS: usize = 8;
const SHARDS: usize = 1 << SHARD_BITS;

/// An IBLT whose cells are protected by `SHARDS` mutex stripes.
pub struct LockedIblt {
    cfg: IbltConfig,
    hasher: IbltHasher,
    /// Cells grouped into shards; cell `i` lives in shard `i % SHARDS` at
    /// offset `i / SHARDS` (striping spreads adjacent cells across shards
    /// to reduce contention on the hot subtable being scanned).
    shards: Vec<Mutex<Vec<Cell>>>,
}

impl LockedIblt {
    /// Fresh empty table.
    pub fn new(cfg: IbltConfig) -> Self {
        let total = cfg.total_cells();
        let per_shard = total.div_ceil(SHARDS);
        LockedIblt {
            cfg,
            hasher: IbltHasher::new(&cfg),
            shards: (0..SHARDS)
                .map(|_| Mutex::new(vec![Cell::default(); per_shard]))
                .collect(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IbltConfig {
        &self.cfg
    }

    #[inline]
    fn locate(idx: usize) -> (usize, usize) {
        (idx % SHARDS, idx / SHARDS)
    }

    fn update(&self, key: u64, dir: i64) {
        let check = self.hasher.checksum(key);
        for j in 0..self.cfg.hashes {
            let (shard, off) = Self::locate(self.hasher.global_cell(j, key));
            self.shards[shard].lock()[off].apply(key, check, dir);
        }
    }

    /// Insert a key (thread-safe via shard locks).
    pub fn insert(&self, key: u64) {
        self.update(key, 1);
    }

    /// Delete a key (thread-safe via shard locks).
    pub fn delete(&self, key: u64) {
        self.update(key, -1);
    }

    /// Bulk parallel insert.
    pub fn par_insert(&self, keys: &[u64]) {
        keys.par_iter().for_each(|&k| self.insert(k));
    }

    /// Convert to a serial IBLT (e.g. to recover its contents).
    pub fn to_serial(&self) -> Iblt {
        let total = self.cfg.total_cells();
        let mut cells = vec![Cell::default(); total];
        for (idx, slot) in cells.iter_mut().enumerate() {
            let (shard, off) = Self::locate(idx);
            *slot = self.shards[shard].lock()[off];
        }
        let mut t = Iblt::new(self.cfg);
        t.overwrite_cells(cells);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locked_matches_atomic_contents() {
        use crate::parallel::AtomicIblt;
        let cfg = IbltConfig::for_load(3, 2_000, 0.6, 21);
        let keys: Vec<u64> = (0..2_000u64).map(|i| i * 31 + 1).collect();
        let locked = LockedIblt::new(cfg);
        locked.par_insert(&keys);
        let atomic = AtomicIblt::new(cfg);
        atomic.par_insert(&keys);
        assert_eq!(locked.to_serial().cells(), atomic.to_serial().cells());
    }

    #[test]
    fn locked_roundtrip() {
        let cfg = IbltConfig::for_load(3, 1_000, 0.6, 22);
        let keys: Vec<u64> = (0..1_000u64).map(|i| i * 17 + 3).collect();
        let t = LockedIblt::new(cfg);
        t.par_insert(&keys);
        let got = t.to_serial().recover_destructive();
        assert!(got.complete);
        assert_eq!(got.positive.len(), 1_000);
    }

    #[test]
    fn concurrent_mixed_updates() {
        let cfg = IbltConfig::for_load(3, 500, 0.5, 23);
        let t = LockedIblt::new(cfg);
        let keys: Vec<u64> = (0..1_000u64).collect();
        rayon::join(
            || t.par_insert(&keys),
            || keys[500..].par_iter().for_each(|&k| t.delete(k)),
        );
        let got = t.to_serial().recover_destructive();
        assert!(got.complete);
        assert_eq!(got.positive.len(), 500);
    }
}

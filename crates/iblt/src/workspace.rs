//! Reusable recovery state: decode many tables, allocate once.
//!
//! A subround recovery ([`crate::AtomicIblt::par_recover_in`]) needs a
//! queued-cell bitset, per-subtable candidate lists, a scratch list of the
//! keys found in the current subround, striped collection buffers, and the
//! output [`ParRecovery`] vectors. A [`RecoveryWorkspace`] owns all of
//! them; reusing one across recoveries (as `peel-service`'s reconcile
//! pool does every epoch) makes repeated decoding allocation-free in
//! steady state.

// ordering: Relaxed throughout — the SWAR lane updates are commutative
// RMWs (fetch_xor / fetch_add, the same shape as AtomicIblt's cell
// updates) and every scan/delete phase boundary is a rayon fork-join
// barrier that already orders reads against writes; lane seeding happens
// under exclusive &mut borrow (plain get_mut stores).
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering::Relaxed};

use peel_graph::bits::{AtomicBitset, Striped};

use crate::cell::{count_delta, SwarCell};
use crate::parallel::ParRecovery;

/// One decode cell in packed SWAR form: the two lanes of a
/// [`SwarCell`], atomic and adjacent in memory, so a recovery touch
/// (scan or delete) of a cell hits 16 contiguous bytes instead of three
/// parallel arrays.
#[derive(Debug, Default)]
pub(crate) struct AtomicSwarCell {
    pub(crate) key: AtomicU64,
    pub(crate) meta: AtomicU64,
}

impl AtomicSwarCell {
    /// Snapshot both lanes (meaningful between phases only — callers
    /// rely on the subround barriers for consistency).
    #[inline]
    pub(crate) fn load(&self) -> SwarCell {
        SwarCell {
            key: self.key.load(Relaxed),
            meta: self.meta.load(Relaxed),
        }
    }

    /// Overwrite both lanes (single-writer contexts: the seeding
    /// sweeps, where each index has exactly one writer).
    #[inline]
    pub(crate) fn store(&self, c: SwarCell) {
        self.key.store(c.key, Relaxed);
        self.meta.store(c.meta, Relaxed);
    }

    /// Concurrently apply a signed update of `key` with folded checksum
    /// `check48`. The three RMWs all commute (XOR with XOR, ADD with
    /// ADD, and the count addend has zero low bits so it never carries
    /// into the checksum lane), exactly like the scalar cell's
    /// fetch_add/fetch_xor triple — contending deletions of distinct
    /// recovered keys resolve in any order.
    #[inline]
    pub(crate) fn apply(&self, key: u64, check48: u64, dir: i64) {
        self.key.fetch_xor(key, Relaxed);
        self.meta.fetch_add(count_delta(dir), Relaxed);
        self.meta.fetch_xor(check48, Relaxed);
    }
}

/// Reusable buffers for [`crate::AtomicIblt::par_recover_in`].
#[derive(Debug, Default)]
pub struct RecoveryWorkspace {
    /// One bit per cell: queued for its subtable's next candidate scan?
    pub(crate) queued: AtomicBitset,
    /// Candidate cell indices per subtable.
    pub(crate) pending: Vec<Vec<usize>>,
    /// Keys (with signs) recovered in the current subround.
    pub(crate) found: Vec<(u64, i64)>,
    /// Lock-free collection slots for the purity scan: a find claims the
    /// next slot with one `fetch_add` on the cursor (a subround scans one
    /// subtable, so `cells_per_table` slots always suffice).
    pub(crate) slot_key: Vec<AtomicU64>,
    pub(crate) slot_dir: Vec<AtomicI64>,
    pub(crate) slot_cursor: AtomicUsize,
    /// Striped buffers the deletion phase collects touched cells into.
    pub(crate) touched_stripes: Striped<usize>,
    /// The packed decode table: one [`AtomicSwarCell`] per cell of the
    /// table being recovered. The engines seed every lane on entry
    /// (candidate mode seeds during the serial occupancy walk, dense
    /// mode with a parallel fold sweep), so `reset` only sizes the
    /// vector — stale contents are always overwritten before use.
    pub(crate) lanes: Vec<AtomicSwarCell>,
    /// Did the previous decode in this workspace cross the dense
    /// occupancy threshold? Epoch loops decode a stable workload, so
    /// the fused reconcile path uses this to skip the candidate-seeding
    /// bookkeeping (queued bits, pending pushes) that a dense run would
    /// discard anyway — the *budget-factor* fix: a tightly provisioned
    /// sketch is dense every epoch and now pays zero probe overhead.
    /// Self-correcting: every fused decode recounts occupancy and
    /// refreshes the flag, so a workload that turns sparse re-enables
    /// seeding one epoch later. Survives `reset` deliberately.
    pub(crate) prev_dense: bool,
    /// The recovery being (or last) built; vectors are reused run-to-run.
    pub(crate) out: ParRecovery,
}

impl RecoveryWorkspace {
    /// Fresh, empty workspace (sized lazily by the first recovery).
    pub fn new() -> Self {
        RecoveryWorkspace::default()
    }

    /// The last recovery decoded in this workspace.
    pub fn recovery(&self) -> &ParRecovery {
        &self.out
    }

    /// Reinitialize for a table of `r` subtables × `per_table` cells with
    /// empty candidate lists (the recovery seeds them with the table's
    /// nonempty cells — an empty cell can never test pure, and any cell a
    /// deletion later touches is queued then, so skipping empties changes
    /// nothing about which subround finds which key). Allocation-free
    /// once the workspace has decoded a table at least this large.
    pub(crate) fn reset(&mut self, r: usize, per_table: usize) {
        self.queued.reset(r * per_table, false);
        self.pending.resize_with(r, Vec::new);
        for p in self.pending.iter_mut() {
            p.clear();
        }
        self.found.clear();
        self.slot_key.resize_with(per_table, || AtomicU64::new(0));
        self.slot_dir.resize_with(per_table, || AtomicI64::new(0));
        self.lanes.resize_with(r * per_table, Default::default);
        *self.slot_cursor.get_mut() = 0;
        // A panic mid-recovery could strand stripe residue; drain
        // defensively (no-op in the common case).
        self.touched_stripes.drain_each(|_| {});
        self.out.clear();
    }
}

//! Reusable recovery state: decode many tables, allocate once.
//!
//! A subround recovery ([`crate::AtomicIblt::par_recover_in`]) needs a
//! queued-cell bitset, per-subtable candidate lists, a scratch list of the
//! keys found in the current subround, striped collection buffers, and the
//! output [`ParRecovery`] vectors. A [`RecoveryWorkspace`] owns all of
//! them; reusing one across recoveries (as `peel-service`'s reconcile
//! pool does every epoch) makes repeated decoding allocation-free in
//! steady state.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize};

use peel_graph::bits::{AtomicBitset, Striped};

use crate::parallel::ParRecovery;

/// Reusable buffers for [`crate::AtomicIblt::par_recover_in`].
#[derive(Debug, Default)]
pub struct RecoveryWorkspace {
    /// One bit per cell: queued for its subtable's next candidate scan?
    pub(crate) queued: AtomicBitset,
    /// Candidate cell indices per subtable.
    pub(crate) pending: Vec<Vec<usize>>,
    /// Keys (with signs) recovered in the current subround.
    pub(crate) found: Vec<(u64, i64)>,
    /// Lock-free collection slots for the purity scan: a find claims the
    /// next slot with one `fetch_add` on the cursor (a subround scans one
    /// subtable, so `cells_per_table` slots always suffice).
    pub(crate) slot_key: Vec<AtomicU64>,
    pub(crate) slot_dir: Vec<AtomicI64>,
    pub(crate) slot_cursor: AtomicUsize,
    /// Striped buffers the deletion phase collects touched cells into.
    pub(crate) touched_stripes: Striped<usize>,
    /// The recovery being (or last) built; vectors are reused run-to-run.
    pub(crate) out: ParRecovery,
}

impl RecoveryWorkspace {
    /// Fresh, empty workspace (sized lazily by the first recovery).
    pub fn new() -> Self {
        RecoveryWorkspace::default()
    }

    /// The last recovery decoded in this workspace.
    pub fn recovery(&self) -> &ParRecovery {
        &self.out
    }

    /// Reinitialize for a table of `r` subtables × `per_table` cells with
    /// empty candidate lists (the recovery seeds them with the table's
    /// nonempty cells — an empty cell can never test pure, and any cell a
    /// deletion later touches is queued then, so skipping empties changes
    /// nothing about which subround finds which key). Allocation-free
    /// once the workspace has decoded a table at least this large.
    pub(crate) fn reset(&mut self, r: usize, per_table: usize) {
        self.queued.reset(r * per_table, false);
        self.pending.resize_with(r, Vec::new);
        for p in self.pending.iter_mut() {
            p.clear();
        }
        self.found.clear();
        self.slot_key.resize_with(per_table, || AtomicU64::new(0));
        self.slot_dir.resize_with(per_table, || AtomicI64::new(0));
        *self.slot_cursor.get_mut() = 0;
        // A panic mid-recovery could strand stripe residue; drain
        // defensively (no-op in the common case).
        self.touched_stripes.drain_each(|_| {});
        self.out.clear();
    }
}

//! The IBLT cell.

use crate::hashing::IbltHasher;

/// One IBLT cell: signed count, XOR of keys, XOR of key checksums.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cell {
    /// Signed number of keys currently in the cell (negative after
    /// subtraction when the other table contributed more keys here).
    pub count: i64,
    /// XOR of all keys in the cell.
    pub key_sum: u64,
    /// XOR of `checksum(key)` over all keys in the cell.
    pub check_sum: u64,
}

impl Cell {
    /// Apply an insert (`dir = +1`) or delete (`dir = −1`) of `key`.
    #[inline]
    pub fn apply(&mut self, key: u64, check: u64, dir: i64) {
        self.count += dir;
        self.key_sum ^= key;
        self.check_sum ^= check;
    }

    /// Cell is exactly empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0 && self.key_sum == 0 && self.check_sum == 0
    }

    /// Pure-cell test: holds exactly one key (possibly with negative sign),
    /// verified by the checksum. The checksum check is what makes the test
    /// sound in the presence of cancellations (e.g. after subtraction) —
    /// a `count == 1` cell containing three keys (two of them cancelled
    /// signs) fails it with probability `1 − 2^{−64}`.
    #[inline]
    pub fn is_pure(&self, hasher: &IbltHasher) -> bool {
        (self.count == 1 || self.count == -1) && hasher.checksum(self.key_sum) == self.check_sum
    }

    /// Cellwise difference `self − other` (for set reconciliation).
    #[inline]
    pub fn subtract(&self, other: &Cell) -> Cell {
        Cell {
            count: self.count - other.count,
            key_sum: self.key_sum ^ other.key_sum,
            check_sum: self.check_sum ^ other.check_sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IbltConfig;

    fn hasher() -> IbltHasher {
        IbltHasher::new(&IbltConfig::new(3, 64, 5))
    }

    #[test]
    fn apply_roundtrip() {
        let h = hasher();
        let mut c = Cell::default();
        c.apply(42, h.checksum(42), 1);
        assert_eq!(c.count, 1);
        assert!(c.is_pure(&h));
        c.apply(42, h.checksum(42), -1);
        assert!(c.is_empty());
    }

    #[test]
    fn two_keys_not_pure() {
        let h = hasher();
        let mut c = Cell::default();
        c.apply(1, h.checksum(1), 1);
        c.apply(2, h.checksum(2), 1);
        assert_eq!(c.count, 2);
        assert!(!c.is_pure(&h));
    }

    #[test]
    fn negative_pure_detected() {
        let h = hasher();
        let mut c = Cell::default();
        c.apply(7, h.checksum(7), -1);
        assert_eq!(c.count, -1);
        assert!(c.is_pure(&h));
        assert_eq!(c.key_sum, 7);
    }

    #[test]
    fn checksum_rejects_fake_pure() {
        // count == 1 but key_sum is a XOR of three keys: checksum mismatch.
        let h = hasher();
        let mut c = Cell::default();
        c.apply(1, h.checksum(1), 1);
        c.apply(2, h.checksum(2), 1);
        c.apply(3, h.checksum(3), -1);
        assert_eq!(c.count, 1);
        assert!(!c.is_pure(&h), "cancellation must not look pure");
    }

    #[test]
    fn subtract_cancels_common_keys() {
        let h = hasher();
        let mut a = Cell::default();
        let mut b = Cell::default();
        a.apply(10, h.checksum(10), 1);
        a.apply(11, h.checksum(11), 1);
        b.apply(10, h.checksum(10), 1);
        let d = a.subtract(&b);
        assert_eq!(d.count, 1);
        assert_eq!(d.key_sum, 11);
        assert!(d.is_pure(&h));
    }

    #[test]
    fn zero_key_pure_cell_is_detected() {
        // Key 0 has key_sum == 0 but a nonzero checksum, so a cell holding
        // only key 0 is pure while an empty cell is not.
        let h = hasher();
        let mut c = Cell::default();
        c.apply(0, h.checksum(0), 1);
        assert!(c.is_pure(&h));
        assert!(!Cell::default().is_pure(&h));
    }
}

//! The IBLT cell, in two layouts.
//!
//! [`Cell`] is the canonical scalar form — a signed 64-bit count plus
//! full 64-bit key and checksum XOR accumulators — used by the serial
//! table, the live [`crate::AtomicIblt`] storage, and every wire/digest
//! comparison (digest equality needs the full-width checksums).
//!
//! [`SwarCell`] is the packed two-lane form the pooled *decode* path
//! uses: the same cell folded into two `u64` words so a recovery
//! subround touches 16 adjacent bytes per cell instead of three
//! separate 8-byte arrays. Lane 0 is the key XOR accumulator verbatim;
//! lane 1 carries the signed count in its top 16 bits (updated by
//! wrapping *addition* of `dir << 48`, which cannot carry into the low
//! bits) and a 48-bit [`fold48`]-compressed checksum XOR accumulator in
//! the low 48. The fold is linear over XOR, so a `SwarCell` built by
//! folding each update equals the fold of the scalarly-accumulated
//! [`Cell`] bit for bit — the identity the decode engines rely on and
//! the proptests pin.
//!
//! Two deliberate narrowings, both confined to ephemeral decode tables:
//! purity false-positives rise from `2^{-64}` to `2^{-48}`, and the
//! count lane wraps at `±2^{15}` (a cell holding ≥ 32768 net copies of
//! keys is far outside any decodable sketch's contract — scalar
//! recovery would fail on such a table too).

use crate::hashing::IbltHasher;

/// Mask of the low 48 bits of [`SwarCell::meta`] — the folded-checksum
/// lane.
pub const CHECK48_MASK: u64 = (1 << 48) - 1;

/// Fold a 64-bit checksum into the 48-bit meta lane: XOR the top 16
/// bits into the low 16. Linear over XOR
/// (`fold48(a ^ b) == fold48(a) ^ fold48(b)`), so folded accumulators
/// track the scalar checksum accumulator exactly.
#[inline]
pub fn fold48(check: u64) -> u64 {
    (check ^ (check >> 48)) & CHECK48_MASK
}

/// The addend that bumps [`SwarCell::meta`]'s count field by `dir`.
/// All-zero in the low 48 bits, so (wrapping) addition never carries
/// into the checksum lane; carries out of bit 63 wrap, which is exactly
/// 16-bit wrapping arithmetic on the count field.
#[inline]
pub fn count_delta(dir: i64) -> u64 {
    (dir as u64) << 48
}

/// One IBLT cell: signed count, XOR of keys, XOR of key checksums.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cell {
    /// Signed number of keys currently in the cell (negative after
    /// subtraction when the other table contributed more keys here).
    pub count: i64,
    /// XOR of all keys in the cell.
    pub key_sum: u64,
    /// XOR of `checksum(key)` over all keys in the cell.
    pub check_sum: u64,
}

impl Cell {
    /// Apply an insert (`dir = +1`) or delete (`dir = −1`) of `key`.
    #[inline]
    pub fn apply(&mut self, key: u64, check: u64, dir: i64) {
        self.count += dir;
        self.key_sum ^= key;
        self.check_sum ^= check;
    }

    /// Cell is exactly empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0 && self.key_sum == 0 && self.check_sum == 0
    }

    /// Pure-cell test: holds exactly one key (possibly with negative sign),
    /// verified by the checksum. The checksum check is what makes the test
    /// sound in the presence of cancellations (e.g. after subtraction) —
    /// a `count == 1` cell containing three keys (two of them cancelled
    /// signs) fails it with probability `1 − 2^{−64}`.
    #[inline]
    pub fn is_pure(&self, hasher: &IbltHasher) -> bool {
        (self.count == 1 || self.count == -1) && hasher.checksum(self.key_sum) == self.check_sum
    }

    /// Cellwise difference `self − other` (for set reconciliation).
    #[inline]
    pub fn subtract(&self, other: &Cell) -> Cell {
        Cell {
            count: self.count - other.count,
            key_sum: self.key_sum ^ other.key_sum,
            check_sum: self.check_sum ^ other.check_sum,
        }
    }

    /// Pack into the two-lane SWAR form (see the module docs).
    #[inline]
    pub fn to_swar(&self) -> SwarCell {
        SwarCell {
            key: self.key_sum,
            meta: count_delta(self.count) | fold48(self.check_sum),
        }
    }
}

/// A [`Cell`] packed into two 64-bit SWAR lanes (module docs have the
/// layout and the accuracy trade-offs). This is the plain-data form;
/// the decode engines keep atomic lanes of the same layout and update
/// them with commuting `fetch_xor`/`fetch_add` ops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwarCell {
    /// Lane 0: XOR of all keys in the cell (identical to
    /// [`Cell::key_sum`]).
    pub key: u64,
    /// Lane 1: signed 16-bit count in bits 48..64, 48-bit folded
    /// checksum XOR accumulator in bits 0..48.
    pub meta: u64,
}

impl SwarCell {
    /// Apply an insert (`dir = +1`) or delete (`dir = −1`) of `key`,
    /// given the *folded* checksum `check48 = fold48(checksum(key))`.
    /// Mirrors [`Cell::apply`] lane-wise.
    #[inline]
    pub fn apply(&mut self, key: u64, check48: u64, dir: i64) {
        self.key ^= key;
        self.meta = self.meta.wrapping_add(count_delta(dir)) ^ check48;
    }

    /// The signed count field, sign-extended from its 16 bits.
    #[inline]
    pub fn count(&self) -> i64 {
        ((self.meta >> 48) as u16 as i16) as i64
    }

    /// The folded-checksum field.
    #[inline]
    pub fn check48(&self) -> u64 {
        self.meta & CHECK48_MASK
    }

    /// Cell is exactly empty (both lanes zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.key == 0 && self.meta == 0
    }

    /// Pure-cell test over the packed lanes; agrees with
    /// [`Cell::is_pure`] up to the `2^{-48}` folded-checksum collision
    /// probability.
    #[inline]
    pub fn is_pure(&self, hasher: &IbltHasher) -> bool {
        let c = self.count();
        (c == 1 || c == -1) && fold48(hasher.checksum(self.key)) == self.check48()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IbltConfig;

    fn hasher() -> IbltHasher {
        IbltHasher::new(&IbltConfig::new(3, 64, 5))
    }

    #[test]
    fn apply_roundtrip() {
        let h = hasher();
        let mut c = Cell::default();
        c.apply(42, h.checksum(42), 1);
        assert_eq!(c.count, 1);
        assert!(c.is_pure(&h));
        c.apply(42, h.checksum(42), -1);
        assert!(c.is_empty());
    }

    #[test]
    fn two_keys_not_pure() {
        let h = hasher();
        let mut c = Cell::default();
        c.apply(1, h.checksum(1), 1);
        c.apply(2, h.checksum(2), 1);
        assert_eq!(c.count, 2);
        assert!(!c.is_pure(&h));
    }

    #[test]
    fn negative_pure_detected() {
        let h = hasher();
        let mut c = Cell::default();
        c.apply(7, h.checksum(7), -1);
        assert_eq!(c.count, -1);
        assert!(c.is_pure(&h));
        assert_eq!(c.key_sum, 7);
    }

    #[test]
    fn checksum_rejects_fake_pure() {
        // count == 1 but key_sum is a XOR of three keys: checksum mismatch.
        let h = hasher();
        let mut c = Cell::default();
        c.apply(1, h.checksum(1), 1);
        c.apply(2, h.checksum(2), 1);
        c.apply(3, h.checksum(3), -1);
        assert_eq!(c.count, 1);
        assert!(!c.is_pure(&h), "cancellation must not look pure");
    }

    #[test]
    fn subtract_cancels_common_keys() {
        let h = hasher();
        let mut a = Cell::default();
        let mut b = Cell::default();
        a.apply(10, h.checksum(10), 1);
        a.apply(11, h.checksum(11), 1);
        b.apply(10, h.checksum(10), 1);
        let d = a.subtract(&b);
        assert_eq!(d.count, 1);
        assert_eq!(d.key_sum, 11);
        assert!(d.is_pure(&h));
    }

    #[test]
    fn fold48_is_xor_linear() {
        let (a, b) = (0x0123_4567_89ab_cdefu64, 0xfedc_ba98_7654_3210u64);
        assert_eq!(fold48(a ^ b), fold48(a) ^ fold48(b));
        assert_eq!(fold48(0), 0);
        assert!(fold48(a) <= CHECK48_MASK);
    }

    #[test]
    fn swar_tracks_scalar_bit_for_bit() {
        // A deterministic mixed insert/delete sequence applied to both
        // layouts; the packed form must equal the scalar fold after
        // every step.
        let h = hasher();
        let mut scalar = Cell::default();
        let mut swar = SwarCell::default();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for step in 0..200u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = x >> 8;
            let dir = if step % 3 == 0 { -1 } else { 1 };
            let check = h.checksum(key);
            scalar.apply(key, check, dir);
            swar.apply(key, fold48(check), dir);
            assert_eq!(swar, scalar.to_swar(), "diverged at step {step}");
            assert_eq!(swar.count(), scalar.count, "count lane at step {step}");
            assert_eq!(swar.is_empty(), scalar.is_empty());
            assert_eq!(
                swar.is_pure(&h),
                scalar.is_pure(&h),
                "purity at step {step}"
            );
        }
    }

    #[test]
    fn swar_negative_count_sign_extends() {
        let h = hasher();
        let mut c = SwarCell::default();
        for _ in 0..5 {
            c.apply(7, fold48(h.checksum(7)), -1);
        }
        assert_eq!(c.count(), -5);
        c.apply(7, fold48(h.checksum(7)), 1);
        assert_eq!(c.count(), -4);
    }

    #[test]
    fn swar_purity_matches_scalar_cases() {
        let h = hasher();
        // Pure positive, pure negative, fake-pure cancellation.
        let mut pure = Cell::default();
        pure.apply(42, h.checksum(42), 1);
        assert!(pure.to_swar().is_pure(&h));
        let mut neg = Cell::default();
        neg.apply(7, h.checksum(7), -1);
        assert!(neg.to_swar().is_pure(&h));
        let mut fake = Cell::default();
        fake.apply(1, h.checksum(1), 1);
        fake.apply(2, h.checksum(2), 1);
        fake.apply(3, h.checksum(3), -1);
        assert!(!fake.to_swar().is_pure(&h));
        assert!(!SwarCell::default().is_pure(&h));
    }

    #[test]
    fn count_delta_never_touches_check_lane() {
        for dir in [-3i64, -1, 1, 3] {
            assert_eq!(count_delta(dir) & CHECK48_MASK, 0);
        }
        // Wrapping add of a negative delta borrows only inside/above the
        // count field.
        let meta = 0x0001_dead_beef_cafeu64; // count = 1, some checksum
        let after = meta.wrapping_add(count_delta(-1));
        assert_eq!(after & CHECK48_MASK, meta & CHECK48_MASK);
        assert_eq!((after >> 48) as u16 as i16, 0);
    }

    #[test]
    fn zero_key_pure_cell_is_detected() {
        // Key 0 has key_sum == 0 but a nonzero checksum, so a cell holding
        // only key 0 is pure while an empty cell is not.
        let h = hasher();
        let mut c = Cell::default();
        c.apply(0, h.checksum(0), 1);
        assert!(c.is_pure(&h));
        assert!(!Cell::default().is_pure(&h));
    }
}

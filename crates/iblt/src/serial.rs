//! The serial IBLT — baseline implementation with worklist recovery.

use crate::cell::Cell;
use crate::config::IbltConfig;
use crate::hashing::IbltHasher;

/// A serial Invertible Bloom Lookup Table.
#[derive(Debug, Clone)]
pub struct Iblt {
    cfg: IbltConfig,
    hasher: IbltHasher,
    cells: Vec<Cell>,
    items: i64,
}

/// Two tables are equal when they have the same configuration and the same
/// cell contents (the hasher and item counter are derived from those).
impl PartialEq for Iblt {
    fn eq(&self, other: &Self) -> bool {
        self.cfg == other.cfg && self.cells == other.cells
    }
}

impl Eq for Iblt {}

/// Result of a recovery (listing) attempt.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// Keys recovered with positive sign (inserted more than deleted).
    pub positive: Vec<u64>,
    /// Keys recovered with negative sign (appear only via deletion or via
    /// the subtrahend of a subtraction).
    pub negative: Vec<u64>,
    /// True iff the table decoded completely (all cells empty at the end) —
    /// i.e. the peeling reached the empty 2-core.
    pub complete: bool,
}

impl Iblt {
    /// Fresh empty table.
    pub fn new(cfg: IbltConfig) -> Self {
        let hasher = IbltHasher::new(&cfg);
        Iblt {
            cfg,
            hasher,
            cells: vec![Cell::default(); cfg.total_cells()],
            items: 0,
        }
    }

    /// The configuration (hash count, sizes, seed).
    pub fn config(&self) -> &IbltConfig {
        &self.cfg
    }

    /// Signed number of items currently stored (inserts − deletes).
    pub fn items(&self) -> i64 {
        self.items
    }

    /// Current table load: |items| / total cells.
    pub fn load(&self) -> f64 {
        self.items.unsigned_abs() as f64 / self.cfg.total_cells() as f64
    }

    /// Raw cell access (for tests and for the parallel variant's converter).
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Replace the cell contents wholesale (used by converters between the
    /// serial and atomic representations). The item counter is re-derived
    /// from the cells: the sum of counts is `r ×` the signed item count.
    pub fn overwrite_cells(&mut self, cells: Vec<Cell>) {
        assert_eq!(cells.len(), self.cfg.total_cells());
        self.cells = cells;
        self.refresh_items();
    }

    /// Retarget this table to `cfg` and hand out its cell buffer for a
    /// wholesale overwrite, reusing the existing allocation when capacity
    /// allows. The caller must write every cell (stale contents are *not*
    /// zeroed) and then call [`Iblt::refresh_items`]. This is the
    /// allocation-free half of [`crate::AtomicIblt::snapshot_into`].
    pub(crate) fn prepare_overwrite(&mut self, cfg: IbltConfig) -> &mut [Cell] {
        if self.cfg != cfg {
            self.hasher = IbltHasher::new(&cfg);
            self.cfg = cfg;
        }
        self.cells.resize(cfg.total_cells(), Cell::default());
        &mut self.cells
    }

    /// Re-derive the signed item counter from the cells (the sum of counts
    /// is `r ×` the signed item count).
    pub(crate) fn refresh_items(&mut self) {
        let total: i64 = self.cells.iter().map(|c| c.count).sum();
        self.items = total / self.cfg.hashes as i64;
    }

    /// Insert a key.
    pub fn insert(&mut self, key: u64) {
        self.update(key, 1);
    }

    /// Delete a key (inserting and deleting are symmetric; deleting a key
    /// that was never inserted leaves a negative-signed entry).
    pub fn delete(&mut self, key: u64) {
        self.update(key, -1);
    }

    fn update(&mut self, key: u64, dir: i64) {
        let check = self.hasher.checksum(key);
        for j in 0..self.cfg.hashes {
            let idx = self.hasher.global_cell(j, key);
            self.cells[idx].apply(key, check, dir);
        }
        self.items += dir;
    }

    /// In-place cellwise difference `self -= other`, valid when both share
    /// a config — the allocation-free form of [`Iblt::subtract`] for
    /// callers (like `peel-service`'s reconcile pool) that overwrite a
    /// pooled snapshot with the diff it is about to decode.
    ///
    /// # Panics
    /// Panics if the configs differ (incompatible hash functions).
    pub fn subtract_assign(&mut self, other: &Iblt) {
        assert_eq!(
            self.cfg, other.cfg,
            "subtracting incompatible IBLTs (configs differ)"
        );
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            *a = a.subtract(b);
        }
        self.items -= other.items;
    }

    /// Cellwise difference `self − other`, valid when both share a config.
    /// Recovering the result lists the symmetric difference of the two key
    /// sets.
    ///
    /// # Panics
    /// Panics if the configs differ (incompatible hash functions).
    pub fn subtract(&self, other: &Iblt) -> Iblt {
        assert_eq!(
            self.cfg, other.cfg,
            "subtracting incompatible IBLTs (configs differ)"
        );
        let cells = self
            .cells
            .iter()
            .zip(&other.cells)
            .map(|(a, b)| a.subtract(b))
            .collect();
        Iblt {
            cfg: self.cfg,
            hasher: IbltHasher::new(&self.cfg),
            cells,
            items: self.items - other.items,
        }
    }

    /// Recover (list) the stored key set without consuming the table.
    pub fn recover(&self) -> Recovery {
        self.clone().recover_destructive()
    }

    /// Recover by peeling the table down in place (cheaper; the table is
    /// left empty on success, or holding the un-decodable 2-core residue on
    /// failure).
    pub fn recover_destructive(&mut self) -> Recovery {
        let mut out = Recovery::default();
        // Worklist of candidate pure cells.
        let mut queue: Vec<usize> = (0..self.cells.len())
            .filter(|&i| self.cells[i].is_pure(&self.hasher))
            .collect();

        while let Some(idx) = queue.pop() {
            let cell = self.cells[idx];
            if !cell.is_pure(&self.hasher) {
                continue; // stale entry: already consumed
            }
            let key = cell.key_sum;
            let dir = cell.count; // ±1
            let check = self.hasher.checksum(key);
            // Remove the key from all its cells (including this one).
            for j in 0..self.cfg.hashes {
                let c = self.hasher.global_cell(j, key);
                self.cells[c].apply(key, check, -dir);
                if self.cells[c].is_pure(&self.hasher) {
                    queue.push(c);
                }
            }
            self.items -= dir;
            if dir > 0 {
                out.positive.push(key);
            } else {
                out.negative.push(key);
            }
        }

        out.complete = self.cells.iter().all(Cell::is_empty);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(items: usize, load: f64) -> IbltConfig {
        IbltConfig::for_load(3, items, load, 99)
    }

    #[test]
    fn roundtrip_small_set() {
        let mut t = Iblt::new(cfg(100, 0.5));
        for key in 0..100u64 {
            t.insert(key * 7 + 1);
        }
        let got = t.recover();
        assert!(got.complete);
        assert!(got.negative.is_empty());
        let mut keys = got.positive;
        keys.sort_unstable();
        let want: Vec<u64> = (0..100).map(|k| k * 7 + 1).collect();
        assert_eq!(keys, want);
        // Non-destructive: table still holds the items.
        assert_eq!(t.items(), 100);
    }

    #[test]
    fn insert_then_delete_leaves_empty() {
        let mut t = Iblt::new(cfg(10, 0.5));
        for key in 0..10u64 {
            t.insert(key);
        }
        for key in 0..10u64 {
            t.delete(key);
        }
        assert_eq!(t.items(), 0);
        assert!(t.cells().iter().all(Cell::is_empty));
        let got = t.recover();
        assert!(got.complete);
        assert!(got.positive.is_empty() && got.negative.is_empty());
    }

    #[test]
    fn sparse_recovery_pattern() {
        // Paper's motivating application: many inserts, most deleted.
        let mut t = Iblt::new(cfg(200, 0.6));
        for key in 0..10_000u64 {
            t.insert(key);
        }
        for key in 0..10_000u64 {
            if key % 50 != 0 {
                t.delete(key);
            }
        }
        let got = t.recover();
        assert!(got.complete);
        let mut keys = got.positive;
        keys.sort_unstable();
        let want: Vec<u64> = (0..10_000).filter(|k| k % 50 == 0).collect();
        assert_eq!(keys, want);
    }

    #[test]
    fn deletion_only_keys_come_back_negative() {
        let mut t = Iblt::new(cfg(10, 0.5));
        t.insert(1);
        t.delete(2);
        let got = t.recover();
        assert!(got.complete);
        assert_eq!(got.positive, vec![1]);
        assert_eq!(got.negative, vec![2]);
    }

    #[test]
    fn overload_fails_gracefully() {
        // Load ~0.95 ≫ c*_{2,3} ≈ 0.818: recovery must report incomplete.
        let cfg = IbltConfig::new(3, 100, 3);
        let mut t = Iblt::new(cfg);
        for key in 0..285u64 {
            t.insert(key);
        }
        let got = t.recover();
        assert!(!got.complete, "overloaded table should not fully decode");
        // Whatever was recovered is genuine.
        assert!(got.positive.iter().all(|&k| k < 285));
        assert!(got.negative.is_empty());
    }

    #[test]
    fn destructive_recovery_empties_table() {
        let mut t = Iblt::new(cfg(50, 0.5));
        for key in 0..50u64 {
            t.insert(key);
        }
        let got = t.recover_destructive();
        assert!(got.complete);
        assert_eq!(t.items(), 0);
        assert!(t.cells().iter().all(Cell::is_empty));
    }

    #[test]
    fn subtract_recovers_symmetric_difference() {
        let c = cfg(100, 0.3);
        let mut a = Iblt::new(c);
        let mut b = Iblt::new(c);
        // Shared keys 0..90; A also has 1000..1005, B also has 2000..2003.
        for key in 0..90u64 {
            a.insert(key);
            b.insert(key);
        }
        for key in 1000..1005u64 {
            a.insert(key);
        }
        for key in 2000..2003u64 {
            b.insert(key);
        }
        let mut d = a.subtract(&b);
        let got = d.recover_destructive();
        assert!(got.complete);
        let mut only_a = got.positive;
        only_a.sort_unstable();
        let mut only_b = got.negative;
        only_b.sort_unstable();
        assert_eq!(only_a, (1000..1005).collect::<Vec<u64>>());
        assert_eq!(only_b, (2000..2003).collect::<Vec<u64>>());
    }

    #[test]
    fn subtract_assign_matches_subtract() {
        let c = cfg(100, 0.3);
        let mut a = Iblt::new(c);
        let mut b = Iblt::new(c);
        for key in 0..80u64 {
            a.insert(key);
            b.insert(key);
        }
        a.insert(500);
        b.insert(600);
        let by_value = a.subtract(&b);
        let mut in_place = a.clone();
        in_place.subtract_assign(&b);
        assert_eq!(in_place, by_value);
        assert_eq!(in_place.items(), by_value.items());
        let got = in_place.recover();
        assert!(got.complete);
        assert_eq!(got.positive, vec![500]);
        assert_eq!(got.negative, vec![600]);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn subtract_assign_requires_same_config() {
        let mut a = Iblt::new(IbltConfig::new(3, 100, 1));
        let b = Iblt::new(IbltConfig::new(3, 100, 2));
        a.subtract_assign(&b);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn subtract_requires_same_config() {
        let a = Iblt::new(IbltConfig::new(3, 100, 1));
        let b = Iblt::new(IbltConfig::new(3, 100, 2));
        let _ = a.subtract(&b);
    }

    #[test]
    fn duplicate_insertions_block_then_unblock() {
        // Inserting the same key twice makes its cells have count 2 with
        // key_sum 0 — unrecoverable as-is; deleting one copy restores it.
        let mut t = Iblt::new(cfg(10, 0.4));
        t.insert(5);
        t.insert(5);
        let got = t.recover();
        assert!(!got.complete, "duplicate keys cannot be listed");
        t.delete(5);
        let got = t.recover();
        assert!(got.complete);
        assert_eq!(got.positive, vec![5]);
    }
}

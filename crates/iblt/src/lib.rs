//! # peel-iblt — Invertible Bloom Lookup Tables with parallel recovery
//!
//! An IBLT (Goodrich & Mitzenmacher) stores a *set* of keys in `O(n)` cells
//! such that, as long as the number of stored keys is below the peeling
//! threshold for the underlying hypergraph, the entire set can be listed
//! back out. It is the application the paper implements on a GPU
//! (Section 6); this crate reproduces that implementation on a multicore
//! CPU with rayon.
//!
//! ## Structure
//!
//! The table is split into `r` equal **subtables**; a key is hashed to
//! exactly one cell in each subtable. Every cell holds
//!
//! ```text
//! count     — signed number of keys in the cell
//! key_sum   — XOR of the keys in the cell
//! check_sum — XOR of checksum(key) over the keys in the cell
//! ```
//!
//! Insertion XORs the key into its `r` cells; deletion is the same with
//! `count -= 1`. A cell is **pure** when `count == ±1` and
//! `checksum(key_sum) == check_sum`; recovery repeatedly extracts the key
//! of a pure cell and removes it from its other cells — which *is* peeling
//! on the hypergraph whose vertices are cells and whose edges are keys
//! (pure cell ⇔ vertex of degree < 2).
//!
//! ## Contract: net multiplicities in {−1, 0, +1}
//!
//! Like all IBLTs, the structure stores a *signed set*: by recovery time,
//! each key's net count (inserts − deletes) must be −1, 0, or +1. Keys at
//! net ±2 or beyond leave cancelled XOR pairs in their cells (e.g. a net −2
//! key contributes `count −2, key_sum 0`), which can make an overlapping
//! cell of some *other* key pass the pure test with the wrong sign and
//! misattribute that key's direction. Transient violations during a stream
//! are fine — only the state at recovery matters.
//!
//! ## Parallel recovery
//!
//! [`AtomicIblt::par_recover`] follows the paper's scheme exactly:
//! proceed in rounds of `r` subrounds; in subround `j`, scan subtable `j`
//! for pure cells in parallel (one logical thread per cell), then delete
//! the recovered keys from all subtables with atomic XOR / add operations.
//! Because a key occupies a single cell per subtable, a key can be
//! discovered in only one pure cell per subround — this is how the paper
//! avoids deleting an item multiple times, and it is why the subtable
//! recurrence of Appendix B (implemented in `peel_analysis::subtable`)
//! governs the subround count.
//!
//! For repeated decoding (a reconciliation service running every epoch),
//! [`AtomicIblt::par_recover_in`] runs the candidate-tracking variant out
//! of a reusable [`RecoveryWorkspace`], and
//! [`AtomicIblt::snapshot_into`] / [`AtomicIblt::load_iblt`] /
//! [`Iblt::subtract_assign`] overwrite pooled tables in place — together
//! they make the whole snapshot → subtract → recover cycle
//! allocation-free in steady state.
//!
//! ## Applications included
//!
//! * [`sparse::SparseRecovery`] — insert N keys, delete all but n, list the
//!   survivors (the paper's motivating application).
//! * [`reconcile`] — set reconciliation: subtract two IBLTs and decode the
//!   symmetric difference (Eppstein et al.).
//!
//! ## Example
//!
//! ```
//! use peel_iblt::{Iblt, IbltConfig};
//!
//! // 3 hash functions, room for ~1000 keys at load 0.7 (< c*_{2,3} ≈ 0.818).
//! let cfg = IbltConfig::for_load(3, 1000, 0.7, 42);
//! let mut t = Iblt::new(cfg);
//! for key in 0..1000u64 {
//!     t.insert(key);
//! }
//! let out = t.recover();
//! assert!(out.complete);
//! assert_eq!(out.positive.len(), 1000);
//! ```

#![warn(missing_docs)]

pub mod cell;
pub mod config;
pub mod hashing;
pub mod kv;
pub mod locked;
pub mod parallel;
pub mod reconcile;
pub mod serial;
pub mod sparse;
pub(crate) mod sync;
pub mod workspace;

pub use cell::{Cell, SwarCell};
pub use config::IbltConfig;
pub use hashing::IbltHasher;
pub use kv::{AtomicKvIblt, GetResult, KvIblt, KvRecovery};
pub use parallel::{AtomicIblt, ParRecovery};
pub use reconcile::{reconcile, SetDiff};
pub use serial::{Iblt, Recovery};
pub use workspace::RecoveryWorkspace;

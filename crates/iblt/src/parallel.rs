//! The parallel IBLT — the paper's GPU implementation, on rayon.
//!
//! Cells are stored struct-of-arrays as atomics so that concurrent inserts,
//! deletes, and recovery-phase removals compose exactly like the paper's
//! atomic-XOR CUDA kernels:
//!
//! * `count` — `AtomicI64`, updated with `fetch_add`;
//! * `key_sum`, `check_sum` — `AtomicU64`, updated with `fetch_xor`.
//!
//! Recovery proceeds in **subrounds** (Section 6): subround `j` scans
//! subtable `j` for pure cells in parallel, *then* deletes the recovered
//! keys from all subtables in parallel. The two-phase structure means the
//! purity scan never races with deletions; deletions to shared cells of
//! different recovered keys are resolved by the atomics (that contention is
//! why the paper needs atomic XOR at all). A key is found in at most one
//! pure cell per subround because it occupies exactly one cell of the
//! scanned subtable — the duplicate-peel hazard the paper's subtable scheme
//! exists to prevent.

use rayon::prelude::*;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

use crate::cell::Cell;
use crate::config::IbltConfig;
use crate::hashing::IbltHasher;
use crate::serial::{Iblt, Recovery};

/// A concurrently updatable IBLT with parallel (subround) recovery.
pub struct AtomicIblt {
    cfg: IbltConfig,
    hasher: IbltHasher,
    count: Vec<AtomicI64>,
    key_sum: Vec<AtomicU64>,
    check_sum: Vec<AtomicU64>,
}

/// Result of a parallel recovery, with the subround trace the paper's
/// Appendix B analysis predicts.
#[derive(Debug, Clone, Default)]
pub struct ParRecovery {
    /// Keys recovered with positive sign.
    pub positive: Vec<u64>,
    /// Keys recovered with negative sign.
    pub negative: Vec<u64>,
    /// True iff the table decoded completely.
    pub complete: bool,
    /// Index of the last productive subround (Table 5's metric).
    pub subrounds: u32,
    /// Full rounds spanned (`ceil(subrounds / r)`).
    pub rounds: u32,
    /// Keys recovered in each subround (length = last productive subround).
    pub per_subround: Vec<u64>,
}

impl AtomicIblt {
    /// Fresh empty table.
    pub fn new(cfg: IbltConfig) -> Self {
        let hasher = IbltHasher::new(&cfg);
        let total = cfg.total_cells();
        AtomicIblt {
            cfg,
            hasher,
            count: (0..total).map(|_| AtomicI64::new(0)).collect(),
            key_sum: (0..total).map(|_| AtomicU64::new(0)).collect(),
            check_sum: (0..total).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IbltConfig {
        &self.cfg
    }

    /// Insert a key; safe to call concurrently from many threads.
    pub fn insert(&self, key: u64) {
        self.update(key, 1);
    }

    /// Delete a key; safe to call concurrently from many threads.
    pub fn delete(&self, key: u64) {
        self.update(key, -1);
    }

    fn update(&self, key: u64, dir: i64) {
        let check = self.hasher.checksum(key);
        for j in 0..self.cfg.hashes {
            let idx = self.hasher.global_cell(j, key);
            self.count[idx].fetch_add(dir, Relaxed);
            self.key_sum[idx].fetch_xor(key, Relaxed);
            self.check_sum[idx].fetch_xor(check, Relaxed);
        }
    }

    /// Insert a batch in parallel (one rayon task per chunk of keys) — the
    /// paper's parallel insertion phase.
    pub fn par_insert(&self, keys: &[u64]) {
        keys.par_iter().for_each(|&k| self.insert(k));
    }

    /// Delete a batch in parallel.
    pub fn par_delete(&self, keys: &[u64]) {
        keys.par_iter().for_each(|&k| self.delete(k));
    }

    /// Snapshot a cell (only meaningful between phases — callers inside
    /// recovery rely on the phase barriers for consistency).
    fn read_cell(&self, idx: usize) -> Cell {
        Cell {
            count: self.count[idx].load(Relaxed),
            key_sum: self.key_sum[idx].load(Relaxed),
            check_sum: self.check_sum[idx].load(Relaxed),
        }
    }

    /// Parallel recovery by subrounds; peels the table down in place.
    ///
    /// Terminates when a full round of `r` silent subrounds passes (global
    /// fixpoint) — on success that means the table is empty.
    pub fn par_recover(&self) -> ParRecovery {
        let r = self.cfg.hashes;
        let per_table = self.cfg.cells_per_table;
        let mut out = ParRecovery::default();
        let mut subround = 0u32;
        let mut idle_streak = 0usize;

        loop {
            let j = (subround as usize) % r;
            subround += 1;

            // Phase 1: scan subtable j for pure cells (no mutation).
            let base = j * per_table;
            let found: Vec<(u64, i64)> = (base..base + per_table)
                .into_par_iter()
                .filter_map(|idx| {
                    let cell = self.read_cell(idx);
                    cell.is_pure(&self.hasher)
                        .then_some((cell.key_sum, cell.count))
                })
                .collect();

            if found.is_empty() {
                idle_streak += 1;
                if idle_streak >= r {
                    break;
                }
                continue;
            }
            idle_streak = 0;

            // Phase 2: delete every recovered key from all subtables
            // (atomic ops resolve collisions between distinct keys).
            found.par_iter().for_each(|&(key, dir)| {
                self.update(key, -dir);
            });

            out.subrounds = subround;
            out.per_subround.push(found.len() as u64);
            for (key, dir) in found {
                if dir > 0 {
                    out.positive.push(key);
                } else {
                    out.negative.push(key);
                }
            }
        }

        out.rounds = out.subrounds.div_ceil(r as u32);
        out.complete = (0..self.cfg.total_cells())
            .into_par_iter()
            .all(|idx| self.read_cell(idx).is_empty());
        out
    }

    /// Parallel recovery with *candidate tracking*: like
    /// [`Self::par_recover`], but each subround scans only cells that were
    /// touched (by a deletion) since their subtable's previous scan, instead
    /// of the whole subtable.
    ///
    /// Semantically identical to `par_recover` — a cell can only *become*
    /// pure when its contents change, so unscanned untouched cells are never
    /// missed, and the subround structure (hence the recovered set and the
    /// subround count) is preserved. On wide machines (the paper's GPU) the
    /// dense scan is free because cells-per-thread is O(1); on CPUs with few
    /// cores this variant removes the `O(cells × subrounds)` scan term that
    /// otherwise dominates below-threshold recovery.
    pub fn par_recover_frontier(&self) -> ParRecovery {
        let r = self.cfg.hashes;
        let per_table = self.cfg.cells_per_table;
        let total = self.cfg.total_cells();
        let mut out = ParRecovery::default();

        // pending[j]: candidate cell indices for subtable j's next scan;
        // `queued` deduplicates (a cell appears at most once across pending
        // lists — it always belongs to table idx/per_table).
        let queued: Vec<std::sync::atomic::AtomicBool> = (0..total)
            .map(|_| std::sync::atomic::AtomicBool::new(true))
            .collect();
        let mut pending: Vec<Vec<usize>> = (0..r)
            .map(|j| (j * per_table..(j + 1) * per_table).collect())
            .collect();

        let mut subround = 0u32;
        let mut idle_streak = 0usize;

        loop {
            let j = (subround as usize) % r;
            subround += 1;

            // Phase 1: scan this table's candidates (consume the list).
            let candidates = std::mem::take(&mut pending[j]);
            candidates.par_iter().for_each(|&idx| {
                queued[idx].store(false, Relaxed);
            });
            let found: Vec<(u64, i64)> = candidates
                .par_iter()
                .filter_map(|&idx| {
                    let cell = self.read_cell(idx);
                    cell.is_pure(&self.hasher)
                        .then_some((cell.key_sum, cell.count))
                })
                .collect();

            if found.is_empty() {
                idle_streak += 1;
                if idle_streak >= r {
                    break;
                }
                continue;
            }
            idle_streak = 0;

            // Phase 2: delete recovered keys; collect the cells they touch
            // as candidates for their tables' next scans.
            let touched: Vec<usize> = found
                .par_iter()
                .fold(Vec::new, |mut acc, &(key, dir)| {
                    let check = self.hasher.checksum(key);
                    for h in 0..r {
                        let idx = self.hasher.global_cell(h, key);
                        self.count[idx].fetch_add(-dir, Relaxed);
                        self.key_sum[idx].fetch_xor(key, Relaxed);
                        self.check_sum[idx].fetch_xor(check, Relaxed);
                        if !queued[idx].swap(true, Relaxed) {
                            acc.push(idx);
                        }
                    }
                    acc
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                });
            for idx in touched {
                pending[idx / per_table].push(idx);
            }

            out.subrounds = subround;
            out.per_subround.push(found.len() as u64);
            for (key, dir) in found {
                if dir > 0 {
                    out.positive.push(key);
                } else {
                    out.negative.push(key);
                }
            }
        }

        out.rounds = out.subrounds.div_ceil(r as u32);
        out.complete = (0..total)
            .into_par_iter()
            .all(|idx| self.read_cell(idx).is_empty());
        out
    }

    /// Copy the current cell contents into a serial [`Iblt`] snapshot
    /// (e.g. to ship over the network or to run recovery on a frozen view
    /// while ingest continues on `self`).
    ///
    /// The copy is sequential on purpose: callers typically hold an
    /// update fence while snapshotting (see below), and for realistic
    /// table sizes a straight copy of three flat arrays is faster than
    /// any fork/join overhead — keeping the fenced window minimal.
    ///
    /// The loads are relaxed and per-cell: if updates race with the
    /// snapshot, a key's `r` cell writes may be only partially captured.
    /// Callers that need a consistent view (such as `peel-service`'s
    /// recovery scheduler) must fence updates around the copy.
    pub fn snapshot(&self) -> Iblt {
        let mut t = Iblt::new(self.cfg);
        let cells: Vec<Cell> = (0..self.cfg.total_cells())
            .map(|i| self.read_cell(i))
            .collect();
        t.overwrite_cells(cells);
        t
    }

    /// Convert to a serial [`Iblt`] (alias of [`Self::snapshot`]).
    pub fn to_serial(&self) -> Iblt {
        self.snapshot()
    }

    /// Build an atomic table holding exactly a serial table's contents
    /// (e.g. a subtracted difference about to be recovered in parallel).
    pub fn from_iblt(t: &Iblt) -> Self {
        let out = AtomicIblt::new(*t.config());
        for (i, c) in t.cells().iter().enumerate() {
            out.count[i].store(c.count, Relaxed);
            out.key_sum[i].store(c.key_sum, Relaxed);
            out.check_sum[i].store(c.check_sum, Relaxed);
        }
        out
    }

    /// Build from a serial table (alias of [`Self::from_iblt`]).
    pub fn from_serial(t: &Iblt) -> Self {
        Self::from_iblt(t)
    }

    /// Serial recovery of the same table contents (for baseline timing).
    pub fn recover_serial(&self) -> Recovery {
        self.to_serial().recover_destructive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<u64> {
        (0..n)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) ^ 0xabcd)
            .collect()
    }

    #[test]
    fn par_roundtrip() {
        let cfg = IbltConfig::for_load(3, 5_000, 0.7, 11);
        let t = AtomicIblt::new(cfg);
        let ks = keys(5_000);
        t.par_insert(&ks);
        let got = t.par_recover();
        assert!(got.complete);
        assert!(got.negative.is_empty());
        let mut sorted = got.positive.clone();
        sorted.sort_unstable();
        let mut want = ks;
        want.sort_unstable();
        assert_eq!(sorted, want);
    }

    #[test]
    fn parallel_matches_serial_recovery_set() {
        let cfg = IbltConfig::for_load(4, 3_000, 0.7, 12);
        let t = AtomicIblt::new(cfg);
        let ks = keys(3_000);
        t.par_insert(&ks);
        let serial = t.recover_serial();
        let par = t.par_recover();
        assert_eq!(serial.complete, par.complete);
        let mut a = serial.positive;
        a.sort_unstable();
        let mut b = par.positive;
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn subround_count_tracks_appendix_b() {
        // r=4, load 0.7: Appendix B / Table 5 predict ≈26–28 subrounds at
        // moderate sizes.
        let cfg = IbltConfig::for_load(4, 70_000, 0.7, 13);
        let t = AtomicIblt::new(cfg);
        t.par_insert(&keys(70_000));
        let got = t.par_recover();
        assert!(got.complete);
        assert!(
            got.subrounds >= 20 && got.subrounds <= 34,
            "subrounds = {}",
            got.subrounds
        );
        // Trace is self-consistent.
        assert_eq!(
            got.per_subround.iter().sum::<u64>(),
            got.positive.len() as u64
        );
    }

    #[test]
    fn overload_reports_incomplete() {
        let cfg = IbltConfig::new(4, 250, 14); // 1000 cells
        let t = AtomicIblt::new(cfg);
        t.par_insert(&keys(850)); // load 0.85 > c*_{2,4} ≈ 0.772
        let got = t.par_recover();
        assert!(!got.complete);
        assert!(got.positive.len() < 850);
    }

    #[test]
    fn concurrent_insert_delete_consistency() {
        let cfg = IbltConfig::for_load(3, 2_000, 0.5, 15);
        let t = AtomicIblt::new(cfg);
        let ks = keys(4_000);
        // Insert everything and delete the second half concurrently.
        rayon::join(|| t.par_insert(&ks), || t.par_delete(&ks[2_000..]));
        // Net content: first 2000 keys inserted, second half cancelled...
        // except deletes of the second half may land before inserts; either
        // way the *net* cell state is identical because the ops commute.
        let got = t.par_recover();
        assert!(got.complete);
        let mut pos = got.positive.clone();
        pos.sort_unstable();
        let mut want = ks[..2_000].to_vec();
        want.sort_unstable();
        assert_eq!(pos, want);
        assert!(got.negative.is_empty());
    }

    #[test]
    fn frontier_recovery_matches_dense() {
        for load in [0.6f64, 0.83] {
            let cfg = IbltConfig::with_total_cells(4, 4_000, 17);
            let items = (load * cfg.total_cells() as f64) as usize;
            let ks = keys(items as u64);
            let a = AtomicIblt::new(cfg);
            a.par_insert(&ks);
            let b = AtomicIblt::new(cfg);
            b.par_insert(&ks);
            let dense = a.par_recover();
            let frontier = b.par_recover_frontier();
            assert_eq!(dense.complete, frontier.complete, "load {load}");
            assert_eq!(dense.subrounds, frontier.subrounds, "load {load}");
            assert_eq!(dense.per_subround, frontier.per_subround);
            let mut x = dense.positive;
            x.sort_unstable();
            let mut y = frontier.positive;
            y.sort_unstable();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn frontier_recovery_handles_negatives() {
        let cfg = IbltConfig::with_total_cells(3, 600, 18);
        let t = AtomicIblt::new(cfg);
        t.par_insert(&keys(100));
        let extra: Vec<u64> = (500..560u64).collect();
        t.par_delete(&extra);
        let got = t.par_recover_frontier();
        assert!(got.complete);
        assert_eq!(got.positive.len(), 100);
        let mut neg = got.negative;
        neg.sort_unstable();
        assert_eq!(neg, extra);
    }

    #[test]
    fn snapshot_then_recover_matches_locked_and_serial() {
        use crate::locked::LockedIblt;
        // Same key set through three paths: atomic + snapshot, locked,
        // and a plain serial table. All recoveries must agree exactly.
        let cfg = IbltConfig::for_load(3, 3_000, 0.65, 31);
        let ks = keys(3_000);

        let atomic = AtomicIblt::new(cfg);
        atomic.par_insert(&ks);
        let mut from_snapshot = atomic.snapshot().recover_destructive();

        let locked = LockedIblt::new(cfg);
        locked.par_insert(&ks);
        let mut from_locked = locked.to_serial().recover_destructive();

        let mut serial = Iblt::new(cfg);
        for &k in &ks {
            serial.insert(k);
        }
        let mut from_serial = serial.recover_destructive();

        for rec in [&mut from_snapshot, &mut from_locked, &mut from_serial] {
            rec.positive.sort_unstable();
        }
        assert!(from_snapshot.complete && from_locked.complete && from_serial.complete);
        assert_eq!(from_snapshot.positive, from_locked.positive);
        assert_eq!(from_snapshot.positive, from_serial.positive);
        assert!(from_snapshot.negative.is_empty());
    }

    #[test]
    fn snapshot_is_a_frozen_copy() {
        // Mutating the source after the snapshot must not affect it.
        let cfg = IbltConfig::for_load(3, 1_000, 0.5, 32);
        let t = AtomicIblt::new(cfg);
        t.par_insert(&keys(1_000));
        let snap = t.snapshot();
        t.par_delete(&keys(1_000));
        assert_eq!(snap.items(), 1_000);
        let got = snap.recover();
        assert!(got.complete);
        assert_eq!(got.positive.len(), 1_000);
    }

    #[test]
    fn from_iblt_roundtrips_signed_contents() {
        // Signed (post-subtraction-style) contents survive the conversion
        // in both directions.
        let cfg = IbltConfig::for_load(4, 200, 0.4, 33);
        let mut serial = Iblt::new(cfg);
        for k in 0..80u64 {
            serial.insert(k);
        }
        for k in 1_000..1_040u64 {
            serial.delete(k);
        }
        let atomic = AtomicIblt::from_iblt(&serial);
        assert_eq!(atomic.snapshot(), serial);
        let got = atomic.par_recover();
        assert!(got.complete);
        assert_eq!(got.positive.len(), 80);
        assert_eq!(got.negative.len(), 40);
    }

    #[test]
    fn serial_parallel_conversion_roundtrip() {
        let cfg = IbltConfig::for_load(3, 500, 0.5, 16);
        let t = AtomicIblt::new(cfg);
        t.par_insert(&keys(500));
        let serial = t.to_serial();
        let back = AtomicIblt::from_serial(&serial);
        let got = back.par_recover();
        assert!(got.complete);
        assert_eq!(got.positive.len(), 500);
    }
}

//! The parallel IBLT — the paper's GPU implementation, on rayon.
//!
//! Cells are stored struct-of-arrays as atomics so that concurrent inserts,
//! deletes, and recovery-phase removals compose exactly like the paper's
//! atomic-XOR CUDA kernels:
//!
//! * `count` — `AtomicI64`, updated with `fetch_add`;
//! * `key_sum`, `check_sum` — `AtomicU64`, updated with `fetch_xor`.
//!
//! Recovery proceeds in **subrounds** (Section 6): subround `j` scans
//! subtable `j` for pure cells in parallel, *then* deletes the recovered
//! keys from all subtables in parallel. The two-phase structure means the
//! purity scan never races with deletions; deletions to shared cells of
//! different recovered keys are resolved by the atomics (that contention is
//! why the paper needs atomic XOR at all). A key is found in at most one
//! pure cell per subround because it occupies exactly one cell of the
//! scanned subtable — the duplicate-peel hazard the paper's subtable scheme
//! exists to prevent.

use rayon::prelude::*;
// ordering: every cell access is Relaxed — count/key_sum/check_sum updates
// are commutative RMWs (fetch_add/fetch_xor) exactly like the paper's
// atomic-XOR CUDA kernels, and subround phases are separated by rayon
// fork-join barriers that already order scans against deletions. Checked by
// the loom model in tests/loom_cells.rs.
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::time::Instant;

use peel_graph::bits::Striped;

use crate::sync::{AtomicI64, AtomicU64};

use crate::cell::{fold48, Cell, SwarCell};
use crate::config::IbltConfig;
use crate::hashing::IbltHasher;
use crate::serial::{Iblt, Recovery};
use crate::workspace::RecoveryWorkspace;

/// A concurrently updatable IBLT with parallel (subround) recovery.
pub struct AtomicIblt {
    cfg: IbltConfig,
    hasher: IbltHasher,
    count: Vec<AtomicI64>,
    key_sum: Vec<AtomicU64>,
    check_sum: Vec<AtomicU64>,
}

/// Result of a parallel recovery, with the subround trace the paper's
/// Appendix B analysis predicts.
#[derive(Debug, Clone, Default)]
pub struct ParRecovery {
    /// Keys recovered with positive sign.
    pub positive: Vec<u64>,
    /// Keys recovered with negative sign.
    pub negative: Vec<u64>,
    /// True iff the table decoded completely.
    pub complete: bool,
    /// Index of the last productive subround (Table 5's metric).
    pub subrounds: u32,
    /// Full rounds spanned (`ceil(subrounds / r)`).
    pub rounds: u32,
    /// Keys recovered in each productive subround.
    pub per_subround: Vec<u64>,
    /// Wall time of each productive subround, in nanoseconds (scan +
    /// deletion phases), aligned with `per_subround` — the attribution
    /// trace `peel-service` ships in its `Stats` metrics.
    pub per_subround_ns: Vec<u64>,
}

impl ParRecovery {
    /// Clear for reuse, keeping every vector's capacity.
    pub(crate) fn clear(&mut self) {
        self.positive.clear();
        self.negative.clear();
        self.complete = false;
        self.subrounds = 0;
        self.rounds = 0;
        self.per_subround.clear();
        self.per_subround_ns.clear();
    }
}

impl AtomicIblt {
    /// Fresh empty table.
    pub fn new(cfg: IbltConfig) -> Self {
        let hasher = IbltHasher::new(&cfg);
        let total = cfg.total_cells();
        AtomicIblt {
            cfg,
            hasher,
            count: (0..total).map(|_| AtomicI64::new(0)).collect(),
            key_sum: (0..total).map(|_| AtomicU64::new(0)).collect(),
            check_sum: (0..total).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IbltConfig {
        &self.cfg
    }

    /// Insert a key; safe to call concurrently from many threads.
    pub fn insert(&self, key: u64) {
        self.update(key, 1);
    }

    /// Delete a key; safe to call concurrently from many threads.
    pub fn delete(&self, key: u64) {
        self.update(key, -1);
    }

    fn update(&self, key: u64, dir: i64) {
        let check = self.hasher.checksum(key);
        for j in 0..self.cfg.hashes {
            let idx = self.hasher.global_cell(j, key);
            self.count[idx].fetch_add(dir, Relaxed);
            self.key_sum[idx].fetch_xor(key, Relaxed);
            self.check_sum[idx].fetch_xor(check, Relaxed);
        }
    }

    /// Insert a batch in parallel (one rayon task per chunk of keys) — the
    /// paper's parallel insertion phase.
    pub fn par_insert(&self, keys: &[u64]) {
        keys.par_iter().for_each(|&k| self.insert(k));
    }

    /// Delete a batch in parallel.
    pub fn par_delete(&self, keys: &[u64]) {
        keys.par_iter().for_each(|&k| self.delete(k));
    }

    /// Snapshot a cell (only meaningful between phases — callers inside
    /// recovery rely on the phase barriers for consistency).
    fn read_cell(&self, idx: usize) -> Cell {
        Cell {
            count: self.count[idx].load(Relaxed),
            key_sum: self.key_sum[idx].load(Relaxed),
            check_sum: self.check_sum[idx].load(Relaxed),
        }
    }

    /// Parallel recovery by subrounds; peels the table down in place.
    ///
    /// Terminates when a full round of `r` silent subrounds passes (global
    /// fixpoint) — on success that means the table is empty.
    pub fn par_recover(&self) -> ParRecovery {
        let r = self.cfg.hashes;
        let per_table = self.cfg.cells_per_table;
        let mut out = ParRecovery::default();
        let mut subround = 0u32;
        let mut idle_streak = 0usize;

        loop {
            let j = (subround as usize) % r;
            subround += 1;
            let started = Instant::now();

            // Phase 1: scan subtable j for pure cells (no mutation).
            let base = j * per_table;
            let found: Vec<(u64, i64)> = (base..base + per_table)
                .into_par_iter()
                .filter_map(|idx| {
                    let cell = self.read_cell(idx);
                    cell.is_pure(&self.hasher)
                        .then_some((cell.key_sum, cell.count))
                })
                .collect();

            if found.is_empty() {
                idle_streak += 1;
                if idle_streak >= r {
                    break;
                }
                continue;
            }
            idle_streak = 0;

            // Phase 2: delete every recovered key from all subtables
            // (atomic ops resolve collisions between distinct keys).
            found.par_iter().for_each(|&(key, dir)| {
                self.update(key, -dir);
            });

            out.subrounds = subround;
            out.per_subround.push(found.len() as u64);
            out.per_subround_ns
                .push(started.elapsed().as_nanos() as u64);
            for (key, dir) in found {
                if dir > 0 {
                    out.positive.push(key);
                } else {
                    out.negative.push(key);
                }
            }
        }

        out.rounds = out.subrounds.div_ceil(r as u32);
        out.complete = (0..self.cfg.total_cells())
            .into_par_iter()
            .all(|idx| self.read_cell(idx).is_empty());
        out
    }

    /// Parallel recovery with *candidate tracking*, throwaway-workspace
    /// form of [`Self::par_recover_in`]: each subround scans only cells
    /// that were touched (by a deletion) since their subtable's previous
    /// scan, instead of the whole subtable.
    ///
    /// Semantically identical to [`Self::par_recover`] — a cell can only
    /// *become* pure when its contents change, so unscanned untouched
    /// cells are never missed, and the subround structure (hence the
    /// recovered set and the subround count) is preserved. On wide
    /// machines (the paper's GPU) the dense scan is free because
    /// cells-per-thread is O(1); on CPUs with few cores this variant
    /// removes the `O(cells × subrounds)` scan term that otherwise
    /// dominates below-threshold recovery. Unlike [`Self::par_recover`]
    /// it does not consume the table: the decode peels a packed copy in
    /// the workspace, leaving `self` intact.
    pub fn par_recover_frontier(&self) -> ParRecovery {
        let mut ws = RecoveryWorkspace::new();
        self.par_recover_in(&mut ws);
        ws.out
    }

    /// Direction-optimizing parallel recovery into a reusable
    /// [`RecoveryWorkspace`] — the steady-state-allocation-free engine
    /// behind [`Self::par_recover_frontier`], and the one
    /// `peel-service`'s pooled reconcile path runs every epoch.
    ///
    /// Each subround scans its subtable in whichever direction is
    /// cheaper: a **dense** linear sweep of the whole subtable when the
    /// candidate list is broad (sequential loads, no per-cell
    /// bookkeeping), or a **candidate** scan of just the queued cells
    /// when it is sparse (skipping the `O(cells)` term entirely). Both
    /// find exactly the same pure cells — the queued-cell bitset
    /// maintains the invariant that every cell that changed since its
    /// subtable's last scan is in its pending list, and an unchanged or
    /// empty cell cannot have become pure — so the subround trace is
    /// identical to [`Self::par_recover`]'s either way (modulo the
    /// `2^{-48}` folded-checksum caveat below). The purity scan
    /// and the deletion phase collect into striped reusable buffers
    /// merged by offset, replacing the old per-subround
    /// `collect`/`fold`/`reduce` allocations. Returns a borrow of the
    /// workspace's [`ParRecovery`].
    ///
    /// The decode itself runs over the workspace's **packed SWAR
    /// lanes** ([`SwarCell`] layout): the entry pass folds every cell
    /// into two adjacent `u64` words, and all subsequent scans and
    /// deletions touch only that 16-byte-per-cell table — `self` is
    /// never mutated. Purity false-positives rise from `2^{-64}` to
    /// `2^{-48}` on this ephemeral copy; the table's own full-width
    /// checksums (which digests and snapshots compare) are unaffected.
    pub fn par_recover_in<'ws>(&self, ws: &'ws mut RecoveryWorkspace) -> &'ws ParRecovery {
        let per_table = self.cfg.cells_per_table;
        let total = self.cfg.total_cells();
        ws.reset(self.cfg.hashes, per_table);

        // Direction decision, one occupancy probe per run. An empty cell
        // cannot test pure, and any cell a deletion later touches is
        // queued then — so only nonempty cells matter. If more than 1/8
        // of the table is occupied, run **dense mode**: full subtable
        // sweeps with zero queue bookkeeping, which sequential
        // prefetching makes cheaper than index-chasing unless the table
        // is mostly air. The probe seeds the candidate lists and the
        // workspace's packed SWAR lanes as it goes (plain stores — the
        // workspace is exclusively borrowed) and bails out the moment
        // the threshold is crossed, so ordinarily-loaded tables pay a
        // fraction of one walk before the parallel fold sweep takes
        // over. Sparse tables (a few diff keys in a generously
        // provisioned sketch) finish the walk seeded and run
        // **candidate mode**, touching O(keys·r) cells per round
        // instead of O(cells).
        let mut nonempty = 0usize;
        let mut dense_mode = false;
        for idx in 0..total {
            let cell = self.read_cell(idx);
            let packed = cell.to_swar();
            *ws.lanes[idx].key.get_mut() = packed.key;
            *ws.lanes[idx].meta.get_mut() = packed.meta;
            if !cell.is_empty() {
                nonempty += 1;
                if nonempty * 8 > total {
                    dense_mode = true;
                    break;
                }
                ws.queued.set_mut(idx);
                ws.pending[idx / per_table].push(idx);
            }
        }
        if dense_mode {
            // Abandon the partial seed; dense mode never reads it.
            for p in ws.pending.iter_mut() {
                p.clear();
            }
            ws.queued.reset(total, false);
            // Fold the whole table into the SWAR lanes in one parallel
            // sweep (the serial walk stopped early). Each index has
            // exactly one writer, so plain relaxed stores suffice.
            let lanes = &ws.lanes;
            (0..total).into_par_iter().for_each(|idx| {
                lanes[idx].store(self.read_cell(idx).to_swar());
            });
        }
        self.recover_core(ws, dense_mode)
    }

    /// Fused reconcile decode: overwrite this pooled table with the
    /// cellwise difference `a − b`, seed the recovery workspace — the
    /// packed SWAR decode lanes included — from the very same pass (the
    /// diff cells are in registers as they are stored, so lane folding,
    /// occupancy probing, and candidate seeding cost nothing extra),
    /// and decode. One sweep over the table replaces the subtract +
    /// load + probe passes of the unfused path — this is what
    /// `peel-service` runs per shard per reconcile epoch. The decode
    /// consumes only the workspace lanes, so `self` still holds the
    /// full difference afterwards (it is overwritten again next epoch).
    ///
    /// # Panics
    /// Panics if `a` and `b` have different configs.
    pub fn recover_subtracted_in<'ws>(
        &mut self,
        a: &Iblt,
        b: &Iblt,
        ws: &'ws mut RecoveryWorkspace,
    ) -> &'ws ParRecovery {
        assert_eq!(
            a.config(),
            b.config(),
            "subtracting incompatible IBLTs (configs differ)"
        );
        self.retarget(*a.config());
        let per_table = self.cfg.cells_per_table;
        let total = self.cfg.total_cells();
        ws.reset(self.cfg.hashes, per_table);

        let (nonempty, dense_mode) = if ws.prev_dense {
            // The previous decode of this workspace crossed the dense
            // occupancy threshold — a tightly provisioned sketch stays
            // dense every epoch, so skip the candidate-seeding
            // bookkeeping a dense run would discard and run the fused
            // diff + SWAR-fold sweep in parallel instead (the serial
            // seeding walk is the probe cost the tight regime could not
            // amortize). Occupancy is still counted, so the hint
            // self-corrects the moment the workload turns sparse.
            let this = &*self;
            let (ac, bc) = (a.cells(), b.cells());
            let lanes = &ws.lanes[..];
            let counted = AtomicUsize::new(0);
            let chunk = 4_096usize;
            (0..total.div_ceil(chunk)).into_par_iter().for_each(|ci| {
                let (lo, hi) = (ci * chunk, ((ci + 1) * chunk).min(total));
                let mut local = 0usize;
                for idx in lo..hi {
                    let d = ac[idx].subtract(&bc[idx]);
                    this.count[idx].store(d.count, Relaxed);
                    this.key_sum[idx].store(d.key_sum, Relaxed);
                    this.check_sum[idx].store(d.check_sum, Relaxed);
                    lanes[idx].store(d.to_swar());
                    local += usize::from(!d.is_empty());
                }
                counted.fetch_add(local, Relaxed);
            });
            (counted.into_inner(), true)
        } else {
            let mut nonempty = 0usize;
            for (idx, (ca, cb)) in a.cells().iter().zip(b.cells()).enumerate() {
                let d = ca.subtract(cb);
                *self.count[idx].get_mut() = d.count;
                *self.key_sum[idx].get_mut() = d.key_sum;
                *self.check_sum[idx].get_mut() = d.check_sum;
                // The diff cell is in registers right now — folding it
                // into the packed decode lanes costs two stores, saving
                // the decode any second pass over the scalar arrays.
                let packed = d.to_swar();
                *ws.lanes[idx].key.get_mut() = packed.key;
                *ws.lanes[idx].meta.get_mut() = packed.meta;
                if !d.is_empty() {
                    nonempty += 1;
                    // Seed only while candidate mode is still possible;
                    // once the occupancy crosses the dense threshold
                    // further bookkeeping would be discarded anyway.
                    if nonempty * 8 <= total {
                        ws.queued.set_mut(idx);
                        ws.pending[idx / per_table].push(idx);
                    }
                }
            }
            let dense_mode = nonempty * 8 > total;
            if dense_mode {
                for p in ws.pending.iter_mut() {
                    p.clear();
                }
                ws.queued.reset(total, false);
            }
            (nonempty, dense_mode)
        };
        ws.prev_dense = nonempty * 8 > total;
        self.recover_core(ws, dense_mode)
    }

    /// The shared subround loop of the pooled recoveries, running
    /// entirely over the workspace's packed SWAR lanes: a cell touch
    /// (purity read or deletion) hits one 16-byte record instead of
    /// three parallel 8-byte arrays, and deletions issue two RMW
    /// destinations per cell instead of three. `ws` must be reset for
    /// this table's geometry with every lane seeded; in candidate mode
    /// (`dense_mode == false`) the pending lists must hold every
    /// nonempty cell. The scalar cell arrays of `self` are *not*
    /// consumed — the table keeps its contents while the lanes are
    /// peeled down, which is why [`Self::par_recover_in`] can take
    /// `&self`.
    fn recover_core<'ws>(
        &self,
        ws: &'ws mut RecoveryWorkspace,
        dense_mode: bool,
    ) -> &'ws ParRecovery {
        let r = self.cfg.hashes;
        let per_table = self.cfg.cells_per_table;
        let total = self.cfg.total_cells();
        let RecoveryWorkspace {
            queued,
            pending,
            found,
            slot_key,
            slot_dir,
            slot_cursor,
            touched_stripes,
            lanes,
            out,
            prev_dense: _,
        } = ws;
        let lanes = &lanes[..];

        let mut subround = 0u32;
        let mut idle_streak = 0usize;

        loop {
            let j = (subround as usize) % r;
            subround += 1;
            let started = Instant::now();

            // Phase 1: find this subtable's pure cells. In candidate
            // mode, every cell that could have become pure since the last
            // scan is in the pending list (see above); a broad list is
            // still swept linearly — cheaper per cell than chasing
            // indices and unmarking bits one by one. One task handles
            // each cell exactly once, so the unmark and the purity read
            // don't race within the phase. Either direction finds exactly
            // the same pure set, so the subround trace matches
            // [`Self::par_recover`]'s. Finds land in the lock-free slot
            // array: one cursor `fetch_add` claims a slot (a subround
            // scans one subtable, so `per_table` slots always suffice).
            let candidates = &mut pending[j];
            let dense_sweep = dense_mode || candidates.len() * 4 > per_table;
            {
                let (slot_key, slot_dir, cursor) = (&*slot_key, &*slot_dir, &*slot_cursor);
                let queued = &*queued;
                let put = |cell: SwarCell| {
                    let s = cursor.fetch_add(1, Relaxed);
                    slot_key[s].store(cell.key, Relaxed);
                    slot_dir[s].store(cell.count(), Relaxed);
                };
                if dense_sweep {
                    let base = j * per_table;
                    (base..base + per_table).into_par_iter().for_each(|idx| {
                        let cell = lanes[idx].load();
                        if cell.is_pure(&self.hasher) {
                            put(cell);
                        }
                    });
                    if !dense_mode {
                        // The sweep visited every cell: retire the whole
                        // subtable's queued flags at word granularity.
                        queued.clear_range(base, base + per_table);
                    }
                } else {
                    candidates.par_iter().for_each(|&idx| {
                        queued.clear(idx);
                        let cell = lanes[idx].load();
                        if cell.is_pure(&self.hasher) {
                            put(cell);
                        }
                    });
                }
            }
            candidates.clear();
            found.clear();
            let nfound = slot_cursor.swap(0, Relaxed);
            found.extend(
                (0..nfound).map(|s| (slot_key[s].load(Relaxed), slot_dir[s].load(Relaxed))),
            );

            if found.is_empty() {
                idle_streak += 1;
                if idle_streak >= r {
                    break;
                }
                continue;
            }
            idle_streak = 0;

            // Phase 2: delete recovered keys (atomics resolve collisions
            // between distinct keys). In candidate mode, cells they touch
            // become candidates for their subtables' next scans,
            // deduplicated by the queued bitset; dense mode sweeps
            // everything anyway and skips the bookkeeping.
            if dense_mode {
                found.par_iter().for_each(|&(key, dir)| {
                    let check48 = fold48(self.hasher.checksum(key));
                    for h in 0..r {
                        lanes[self.hasher.global_cell(h, key)].apply(key, check48, -dir);
                    }
                });
            } else {
                let len = found.len();
                let (stripes, queued) = (&*touched_stripes, &*queued);
                found.par_iter().enumerate().for_each(|(i, &(key, dir))| {
                    let check48 = fold48(self.hasher.checksum(key));
                    let mut guard = None;
                    for h in 0..r {
                        let idx = self.hasher.global_cell(h, key);
                        lanes[idx].apply(key, check48, -dir);
                        if !queued.test_and_set(idx) {
                            guard
                                .get_or_insert_with(|| {
                                    stripes.lock(Striped::<usize>::stripe_of(i, len))
                                })
                                .push(idx);
                        }
                    }
                });
                touched_stripes.drain_each(|idx| pending[idx / per_table].push(idx));
            }

            out.subrounds = subround;
            out.per_subround.push(found.len() as u64);
            out.per_subround_ns
                .push(started.elapsed().as_nanos() as u64);
            for &(key, dir) in found.iter() {
                if dir > 0 {
                    out.positive.push(key);
                } else {
                    out.negative.push(key);
                }
            }
        }

        out.rounds = out.subrounds.div_ceil(r as u32);
        out.complete = (0..total)
            .into_par_iter()
            .all(|idx| lanes[idx].load().is_empty());
        out
    }

    /// Copy the current cell contents into a serial [`Iblt`] snapshot
    /// (e.g. to ship over the network or to run recovery on a frozen view
    /// while ingest continues on `self`).
    ///
    /// The copy is sequential on purpose: callers typically hold an
    /// update fence while snapshotting (see below), and for realistic
    /// table sizes a straight copy of three flat arrays is faster than
    /// any fork/join overhead — keeping the fenced window minimal.
    ///
    /// The loads are relaxed and per-cell: if updates race with the
    /// snapshot, a key's `r` cell writes may be only partially captured.
    /// Callers that need a consistent view (such as `peel-service`'s
    /// recovery scheduler) must fence updates around the copy.
    pub fn snapshot(&self) -> Iblt {
        let mut t = Iblt::new(self.cfg);
        self.snapshot_into(&mut t);
        t
    }

    /// Copy the current cell contents into an existing serial [`Iblt`],
    /// retargeting its config and reusing its cell buffer — the
    /// allocation-free form of [`Self::snapshot`] for pooled snapshots
    /// (`peel-service` re-snapshots the same shard every reconcile
    /// epoch). Same consistency caveats as [`Self::snapshot`]: callers
    /// needing a consistent view must fence updates around the copy.
    pub fn snapshot_into(&self, out: &mut Iblt) {
        let cells = out.prepare_overwrite(self.cfg);
        for (i, c) in cells.iter_mut().enumerate() {
            *c = self.read_cell(i);
        }
        out.refresh_items();
    }

    /// Convert to a serial [`Iblt`] (alias of [`Self::snapshot`]).
    pub fn to_serial(&self) -> Iblt {
        self.snapshot()
    }

    /// Build an atomic table holding exactly a serial table's contents
    /// (e.g. a subtracted difference about to be recovered in parallel).
    pub fn from_iblt(t: &Iblt) -> Self {
        let mut out = AtomicIblt::new(*t.config());
        out.load_iblt(t);
        out
    }

    /// Overwrite this table with a serial table's contents, retargeting
    /// the config and reusing the cell arrays — the allocation-free form
    /// of [`Self::from_iblt`] for pooled diff tables that are reloaded
    /// every reconcile epoch. Exclusive access makes the writes plain
    /// stores, not atomic RMWs.
    pub fn load_iblt(&mut self, t: &Iblt) {
        self.retarget(*t.config());
        for (i, c) in t.cells().iter().enumerate() {
            *self.count[i].get_mut() = c.count;
            *self.key_sum[i].get_mut() = c.key_sum;
            *self.check_sum[i].get_mut() = c.check_sum;
        }
    }

    /// Overwrite this table with the cellwise difference `a − b` in one
    /// pass — [`Iblt::subtract`] and [`Self::load_iblt`] fused, so the
    /// reconcile hot path (snapshot − digest → decode) writes the diff
    /// straight into the pooled atomic table instead of materializing it
    /// in a serial intermediary first.
    ///
    /// # Panics
    /// Panics if `a` and `b` have different configs (incompatible hash
    /// functions).
    pub fn load_subtract(&mut self, a: &Iblt, b: &Iblt) {
        assert_eq!(
            a.config(),
            b.config(),
            "subtracting incompatible IBLTs (configs differ)"
        );
        self.retarget(*a.config());
        for (i, (ca, cb)) in a.cells().iter().zip(b.cells()).enumerate() {
            let d = ca.subtract(cb);
            *self.count[i].get_mut() = d.count;
            *self.key_sum[i].get_mut() = d.key_sum;
            *self.check_sum[i].get_mut() = d.check_sum;
        }
    }

    /// Adopt `cfg`, resizing the cell arrays (reusing capacity where
    /// possible) and rebuilding the hasher only on an actual change.
    fn retarget(&mut self, cfg: IbltConfig) {
        if self.cfg != cfg {
            self.hasher = IbltHasher::new(&cfg);
            self.cfg = cfg;
        }
        let total = cfg.total_cells();
        self.count.resize_with(total, || AtomicI64::new(0));
        self.key_sum.resize_with(total, || AtomicU64::new(0));
        self.check_sum.resize_with(total, || AtomicU64::new(0));
    }

    /// Build from a serial table (alias of [`Self::from_iblt`]).
    pub fn from_serial(t: &Iblt) -> Self {
        Self::from_iblt(t)
    }

    /// Serial recovery of the same table contents (for baseline timing).
    pub fn recover_serial(&self) -> Recovery {
        self.to_serial().recover_destructive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<u64> {
        (0..n)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) ^ 0xabcd)
            .collect()
    }

    #[test]
    fn par_roundtrip() {
        let cfg = IbltConfig::for_load(3, 5_000, 0.7, 11);
        let t = AtomicIblt::new(cfg);
        let ks = keys(5_000);
        t.par_insert(&ks);
        let got = t.par_recover();
        assert!(got.complete);
        assert!(got.negative.is_empty());
        let mut sorted = got.positive.clone();
        sorted.sort_unstable();
        let mut want = ks;
        want.sort_unstable();
        assert_eq!(sorted, want);
    }

    #[test]
    fn parallel_matches_serial_recovery_set() {
        let cfg = IbltConfig::for_load(4, 3_000, 0.7, 12);
        let t = AtomicIblt::new(cfg);
        let ks = keys(3_000);
        t.par_insert(&ks);
        let serial = t.recover_serial();
        let par = t.par_recover();
        assert_eq!(serial.complete, par.complete);
        let mut a = serial.positive;
        a.sort_unstable();
        let mut b = par.positive;
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn subround_count_tracks_appendix_b() {
        // r=4, load 0.7: Appendix B / Table 5 predict ≈26–28 subrounds at
        // moderate sizes.
        let cfg = IbltConfig::for_load(4, 70_000, 0.7, 13);
        let t = AtomicIblt::new(cfg);
        t.par_insert(&keys(70_000));
        let got = t.par_recover();
        assert!(got.complete);
        assert!(
            got.subrounds >= 20 && got.subrounds <= 34,
            "subrounds = {}",
            got.subrounds
        );
        // Trace is self-consistent.
        assert_eq!(
            got.per_subround.iter().sum::<u64>(),
            got.positive.len() as u64
        );
    }

    #[test]
    fn overload_reports_incomplete() {
        let cfg = IbltConfig::new(4, 250, 14); // 1000 cells
        let t = AtomicIblt::new(cfg);
        t.par_insert(&keys(850)); // load 0.85 > c*_{2,4} ≈ 0.772
        let got = t.par_recover();
        assert!(!got.complete);
        assert!(got.positive.len() < 850);
    }

    #[test]
    fn concurrent_insert_delete_consistency() {
        let cfg = IbltConfig::for_load(3, 2_000, 0.5, 15);
        let t = AtomicIblt::new(cfg);
        let ks = keys(4_000);
        // Insert everything and delete the second half concurrently.
        rayon::join(|| t.par_insert(&ks), || t.par_delete(&ks[2_000..]));
        // Net content: first 2000 keys inserted, second half cancelled...
        // except deletes of the second half may land before inserts; either
        // way the *net* cell state is identical because the ops commute.
        let got = t.par_recover();
        assert!(got.complete);
        let mut pos = got.positive.clone();
        pos.sort_unstable();
        let mut want = ks[..2_000].to_vec();
        want.sort_unstable();
        assert_eq!(pos, want);
        assert!(got.negative.is_empty());
    }

    #[test]
    fn frontier_recovery_matches_dense() {
        for load in [0.6f64, 0.83] {
            let cfg = IbltConfig::with_total_cells(4, 4_000, 17);
            let items = (load * cfg.total_cells() as f64) as usize;
            let ks = keys(items as u64);
            let a = AtomicIblt::new(cfg);
            a.par_insert(&ks);
            let b = AtomicIblt::new(cfg);
            b.par_insert(&ks);
            let dense = a.par_recover();
            let frontier = b.par_recover_frontier();
            assert_eq!(dense.complete, frontier.complete, "load {load}");
            assert_eq!(dense.subrounds, frontier.subrounds, "load {load}");
            assert_eq!(dense.per_subround, frontier.per_subround);
            let mut x = dense.positive;
            x.sort_unstable();
            let mut y = frontier.positive;
            y.sort_unstable();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn frontier_recovery_handles_negatives() {
        let cfg = IbltConfig::with_total_cells(3, 600, 18);
        let t = AtomicIblt::new(cfg);
        t.par_insert(&keys(100));
        let extra: Vec<u64> = (500..560u64).collect();
        t.par_delete(&extra);
        let got = t.par_recover_frontier();
        assert!(got.complete);
        assert_eq!(got.positive.len(), 100);
        let mut neg = got.negative;
        neg.sort_unstable();
        assert_eq!(neg, extra);
    }

    #[test]
    fn snapshot_then_recover_matches_locked_and_serial() {
        use crate::locked::LockedIblt;
        // Same key set through three paths: atomic + snapshot, locked,
        // and a plain serial table. All recoveries must agree exactly.
        let cfg = IbltConfig::for_load(3, 3_000, 0.65, 31);
        let ks = keys(3_000);

        let atomic = AtomicIblt::new(cfg);
        atomic.par_insert(&ks);
        let mut from_snapshot = atomic.snapshot().recover_destructive();

        let locked = LockedIblt::new(cfg);
        locked.par_insert(&ks);
        let mut from_locked = locked.to_serial().recover_destructive();

        let mut serial = Iblt::new(cfg);
        for &k in &ks {
            serial.insert(k);
        }
        let mut from_serial = serial.recover_destructive();

        for rec in [&mut from_snapshot, &mut from_locked, &mut from_serial] {
            rec.positive.sort_unstable();
        }
        assert!(from_snapshot.complete && from_locked.complete && from_serial.complete);
        assert_eq!(from_snapshot.positive, from_locked.positive);
        assert_eq!(from_snapshot.positive, from_serial.positive);
        assert!(from_snapshot.negative.is_empty());
    }

    #[test]
    fn snapshot_is_a_frozen_copy() {
        // Mutating the source after the snapshot must not affect it.
        let cfg = IbltConfig::for_load(3, 1_000, 0.5, 32);
        let t = AtomicIblt::new(cfg);
        t.par_insert(&keys(1_000));
        let snap = t.snapshot();
        t.par_delete(&keys(1_000));
        assert_eq!(snap.items(), 1_000);
        let got = snap.recover();
        assert!(got.complete);
        assert_eq!(got.positive.len(), 1_000);
    }

    #[test]
    fn from_iblt_roundtrips_signed_contents() {
        // Signed (post-subtraction-style) contents survive the conversion
        // in both directions.
        let cfg = IbltConfig::for_load(4, 200, 0.4, 33);
        let mut serial = Iblt::new(cfg);
        for k in 0..80u64 {
            serial.insert(k);
        }
        for k in 1_000..1_040u64 {
            serial.delete(k);
        }
        let atomic = AtomicIblt::from_iblt(&serial);
        assert_eq!(atomic.snapshot(), serial);
        let got = atomic.par_recover();
        assert!(got.complete);
        assert_eq!(got.positive.len(), 80);
        assert_eq!(got.negative.len(), 40);
    }

    #[test]
    fn workspace_recovery_reuse_matches_dense_across_tables() {
        // One workspace decodes tables of different sizes and configs in a
        // row; every decode must match the dense reference, and timing
        // trace stays aligned with the per-subround key counts.
        let mut ws = RecoveryWorkspace::new();
        for (r, items, seed) in [(4usize, 3_000u64, 40u64), (3, 500, 41), (4, 3_000, 42)] {
            let cfg = IbltConfig::for_load(r, items as usize, 0.65, seed);
            let a = AtomicIblt::new(cfg);
            a.par_insert(&keys(items));
            let b = AtomicIblt::new(cfg);
            b.par_insert(&keys(items));
            let dense = a.par_recover();
            let got = b.par_recover_in(&mut ws);
            assert_eq!(got.complete, dense.complete);
            assert_eq!(got.subrounds, dense.subrounds);
            assert_eq!(got.per_subround, dense.per_subround);
            assert_eq!(got.per_subround_ns.len(), got.per_subround.len());
            let mut x = got.positive.clone();
            x.sort_unstable();
            let mut y = dense.positive.clone();
            y.sort_unstable();
            assert_eq!(x, y);
            // The workspace keeps the last recovery readable.
            assert_eq!(ws.recovery().subrounds, dense.subrounds);
        }
    }

    #[test]
    fn snapshot_into_reuses_and_retargets() {
        let cfg_a = IbltConfig::for_load(3, 1_000, 0.5, 50);
        let cfg_b = IbltConfig::for_load(4, 200, 0.5, 51);
        let a = AtomicIblt::new(cfg_a);
        a.par_insert(&keys(1_000));
        let b = AtomicIblt::new(cfg_b);
        b.par_insert(&keys(200));
        // One pooled snapshot target serves both tables, config switch
        // included, and matches the allocating snapshot exactly.
        let mut snap = Iblt::new(cfg_b);
        a.snapshot_into(&mut snap);
        assert_eq!(snap, a.snapshot());
        assert_eq!(snap.items(), 1_000);
        b.snapshot_into(&mut snap);
        assert_eq!(snap, b.snapshot());
        assert_eq!(snap.items(), 200);
    }

    #[test]
    fn load_iblt_reuses_and_retargets() {
        let cfg_a = IbltConfig::for_load(3, 800, 0.5, 52);
        let cfg_b = IbltConfig::for_load(4, 100, 0.4, 53);
        let mut serial_a = Iblt::new(cfg_a);
        for k in keys(800) {
            serial_a.insert(k);
        }
        let mut serial_b = Iblt::new(cfg_b);
        for k in keys(100) {
            serial_b.insert(k);
        }
        let mut pooled = AtomicIblt::new(cfg_b);
        pooled.load_iblt(&serial_a);
        assert_eq!(pooled.snapshot(), serial_a);
        assert!(pooled.par_recover().complete);
        // Recovery peeled the pooled table down; reload with the other
        // config and decode again.
        pooled.load_iblt(&serial_b);
        assert_eq!(pooled.snapshot(), serial_b);
        let got = pooled.par_recover();
        assert!(got.complete);
        assert_eq!(got.positive.len(), 100);
    }

    #[test]
    fn load_subtract_matches_subtract_then_load() {
        let cfg = IbltConfig::for_load(4, 300, 0.4, 54);
        let mut a = Iblt::new(cfg);
        let mut b = Iblt::new(cfg);
        for k in keys(250) {
            a.insert(k);
            b.insert(k);
        }
        for k in 0..30u64 {
            a.insert(k);
        }
        for k in 100..120u64 {
            b.insert(k);
        }
        let mut fused = AtomicIblt::new(IbltConfig::new(2, 7, 0));
        fused.load_subtract(&a, &b);
        assert_eq!(fused.snapshot(), a.subtract(&b));
        let got = fused.par_recover();
        assert!(got.complete);
        assert_eq!(got.positive.len(), 30);
        assert_eq!(got.negative.len(), 20);
    }

    #[test]
    fn fused_reconcile_dense_hint_epochs_match() {
        // A tight sketch (diff occupancy well over the 1/8 dense
        // threshold) decoded for several epochs from one workspace: the
        // first epoch probes and sets the dense hint, later epochs take
        // the parallel probe-skip sweep. Every epoch must produce the
        // identical recovery, and the diff table must hold the full
        // difference afterwards.
        let cfg = IbltConfig::for_load(3, 120, 0.6, 61);
        let mut a = Iblt::new(cfg);
        let mut b = Iblt::new(cfg);
        for k in keys(400) {
            a.insert(k);
            b.insert(k);
        }
        for k in 0..120u64 {
            a.insert(k);
        }
        let reference = AtomicIblt::from_iblt(&a.subtract(&b)).par_recover();
        assert!(reference.complete);

        let mut ws = RecoveryWorkspace::new();
        let mut pooled = AtomicIblt::new(cfg);
        for epoch in 0..3 {
            let probe_skipped = ws.prev_dense;
            assert_eq!(probe_skipped, epoch > 0, "hint should arm after epoch 0");
            let got = pooled.recover_subtracted_in(&a, &b, &mut ws);
            assert!(got.complete, "epoch {epoch}");
            assert_eq!(got.subrounds, reference.subrounds, "epoch {epoch}");
            assert_eq!(got.per_subround, reference.per_subround);
            let mut x = got.positive.clone();
            x.sort_unstable();
            let mut y = reference.positive.clone();
            y.sort_unstable();
            assert_eq!(x, y, "epoch {epoch}");
            assert!(got.negative.is_empty());
            assert_eq!(pooled.snapshot(), a.subtract(&b), "diff table intact");
        }

        // A sparse epoch through the same workspace still decodes
        // correctly (the hinted dense sweep is merely suboptimal) and
        // disarms the hint for the next epoch.
        let mut c = b.clone();
        c.delete(5_000);
        let got = pooled.recover_subtracted_in(&b, &c, &mut ws);
        assert!(got.complete);
        assert_eq!(got.positive, vec![5_000]);
        assert!(!ws.prev_dense, "sparse epoch must disarm the dense hint");
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn load_subtract_requires_same_config() {
        let a = Iblt::new(IbltConfig::new(3, 50, 1));
        let b = Iblt::new(IbltConfig::new(3, 50, 2));
        AtomicIblt::new(IbltConfig::new(3, 50, 1)).load_subtract(&a, &b);
    }

    #[test]
    fn serial_parallel_conversion_roundtrip() {
        let cfg = IbltConfig::for_load(3, 500, 0.5, 16);
        let t = AtomicIblt::new(cfg);
        t.par_insert(&keys(500));
        let serial = t.to_serial();
        let back = AtomicIblt::from_serial(&serial);
        let got = back.par_recover();
        assert!(got.complete);
        assert_eq!(got.positive.len(), 500);
    }
}

//! Sparse recovery: the paper's motivating IBLT application (Section 6).
//!
//! `N` items stream into a set and all but `n ≪ N` are later deleted; the
//! goal is to list the survivors using space `O(n)` — far below `O(N)`.
//! The IBLT does this directly: inserts and deletes are symmetric cell
//! updates, and at the end the table holds only the `n` survivors, which
//! peeling lists as long as the final load is below the threshold.

use crate::config::IbltConfig;
use crate::parallel::AtomicIblt;
use crate::serial::Recovery;

/// A fixed-capacity sparse-recovery sketch.
///
/// Sized for `capacity` surviving items at a given target load; any number
/// of transient items may pass through it.
pub struct SparseRecovery {
    table: AtomicIblt,
    capacity: usize,
}

impl SparseRecovery {
    /// A sketch able to list up to `capacity` surviving keys w.h.p. Uses
    /// `r = 4` hash functions at load 0.7 (< c*_{2,4} ≈ 0.772) by default.
    pub fn new(capacity: usize, seed: u64) -> Self {
        let cfg = IbltConfig::for_load(4, capacity.max(1), 0.7, seed);
        SparseRecovery {
            table: AtomicIblt::new(cfg),
            capacity,
        }
    }

    /// A sketch with explicit IBLT parameters.
    pub fn with_config(cfg: IbltConfig, capacity: usize) -> Self {
        SparseRecovery {
            table: AtomicIblt::new(cfg),
            capacity,
        }
    }

    /// Designed survivor capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record an item's arrival (thread-safe).
    pub fn insert(&self, key: u64) {
        self.table.insert(key);
    }

    /// Record an item's departure (thread-safe).
    pub fn delete(&self, key: u64) {
        self.table.delete(key);
    }

    /// Bulk parallel arrival.
    pub fn par_insert(&self, keys: &[u64]) {
        self.table.par_insert(keys);
    }

    /// Bulk parallel departure.
    pub fn par_delete(&self, keys: &[u64]) {
        self.table.par_delete(keys);
    }

    /// List the surviving set (destructive: the sketch is consumed into the
    /// answer; clone the underlying table first if you need to keep it).
    pub fn list(self) -> Recovery {
        let par = self.table.par_recover();
        Recovery {
            positive: par.positive,
            negative: par.negative,
            complete: par.complete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survives_heavy_churn() {
        let sketch = SparseRecovery::new(500, 3);
        // 50k arrivals, all but 500 depart.
        let all: Vec<u64> = (0..50_000u64).map(|i| i * 13 + 5).collect();
        sketch.par_insert(&all);
        sketch.par_delete(&all[500..]);
        let out = sketch.list();
        assert!(out.complete);
        let mut got = out.positive;
        got.sort_unstable();
        let mut want = all[..500].to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_sketch_lists_nothing() {
        let out = SparseRecovery::new(100, 4).list();
        assert!(out.complete);
        assert!(out.positive.is_empty());
    }

    #[test]
    fn over_capacity_reports_incomplete() {
        let sketch = SparseRecovery::new(100, 5);
        let all: Vec<u64> = (0..1000u64).collect();
        sketch.par_insert(&all); // 1000 survivors in a 100-capacity sketch
        let out = sketch.list();
        assert!(!out.complete);
    }
}

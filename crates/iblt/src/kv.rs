//! Key-value IBLT — the full Goodrich–Mitzenmacher structure.
//!
//! The paper's Section 6 implementation stores bare keys (that is all the
//! sparse-recovery and reconciliation applications need); the original
//! IBLT paper [9] stores key → value mappings with an extra `value_sum`
//! field per cell and supports point lookups (`get`) as well as full
//! listing. This module provides that structure, with the same subtable
//! layout and the same parallel subround recovery as [`crate::parallel`].
//!
//! Cell state: `count`, `key_sum`, `check_sum`, `value_sum`. All the
//! peeling theory carries over verbatim — values ride along through XOR.
//!
//! Contract: a key is associated with a single value and net key
//! multiplicities at recovery time are in {−1, 0, +1}, as for the plain
//! IBLT. Deleting requires presenting the same (key, value) pair that was
//! inserted.

use rayon::prelude::*;
// ordering: same commutative-RMW argument as crate::parallel — cell updates
// (fetch_add on count, fetch_xor on the three sums) commute, and recovery
// subround phases are sequenced by rayon fork-join barriers, so Relaxed is
// sufficient for every access. Checked by the loom model in
// tests/loom_cells.rs.
use std::sync::atomic::Ordering::Relaxed;

use crate::sync::{AtomicI64, AtomicU64};

use crate::config::IbltConfig;
use crate::hashing::IbltHasher;

/// One key-value cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvCell {
    /// Signed number of pairs in the cell.
    pub count: i64,
    /// XOR of keys.
    pub key_sum: u64,
    /// XOR of key checksums.
    pub check_sum: u64,
    /// XOR of values.
    pub value_sum: u64,
}

impl KvCell {
    #[inline]
    fn apply(&mut self, key: u64, check: u64, value: u64, dir: i64) {
        self.count += dir;
        self.key_sum ^= key;
        self.check_sum ^= check;
        self.value_sum ^= value;
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.count == 0 && self.key_sum == 0 && self.check_sum == 0 && self.value_sum == 0
    }

    #[inline]
    fn is_pure(&self, hasher: &IbltHasher) -> bool {
        (self.count == 1 || self.count == -1) && hasher.checksum(self.key_sum) == self.check_sum
    }
}

/// Result of a `get` probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GetResult {
    /// The key was found in a pure cell; its value is returned.
    Found(u64),
    /// Some cell of the key is empty: the key is definitely not stored.
    NotFound,
    /// All of the key's cells are shared with other pairs; the probe is
    /// inconclusive without running recovery.
    Inconclusive,
}

/// A serial key → value IBLT.
#[derive(Debug, Clone)]
pub struct KvIblt {
    cfg: IbltConfig,
    hasher: IbltHasher,
    cells: Vec<KvCell>,
}

/// Two tables are equal when they have the same configuration and the
/// same cell contents (the hasher is derived from the configuration).
impl PartialEq for KvIblt {
    fn eq(&self, other: &Self) -> bool {
        self.cfg == other.cfg && self.cells == other.cells
    }
}

impl Eq for KvIblt {}

/// Listing outcome for [`KvIblt`].
#[derive(Debug, Clone, Default)]
pub struct KvRecovery {
    /// Pairs recovered with positive sign.
    pub positive: Vec<(u64, u64)>,
    /// Pairs recovered with negative sign.
    pub negative: Vec<(u64, u64)>,
    /// True iff the table decoded completely.
    pub complete: bool,
}

impl KvIblt {
    /// Fresh empty table.
    pub fn new(cfg: IbltConfig) -> Self {
        let hasher = IbltHasher::new(&cfg);
        KvIblt {
            cfg,
            hasher,
            cells: vec![KvCell::default(); cfg.total_cells()],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IbltConfig {
        &self.cfg
    }

    /// Insert a (key, value) pair.
    pub fn insert(&mut self, key: u64, value: u64) {
        self.update(key, value, 1);
    }

    /// Delete a (key, value) pair (must match the inserted pair).
    pub fn delete(&mut self, key: u64, value: u64) {
        self.update(key, value, -1);
    }

    fn update(&mut self, key: u64, value: u64, dir: i64) {
        let check = self.hasher.checksum(key);
        for j in 0..self.cfg.hashes {
            let idx = self.hasher.global_cell(j, key);
            self.cells[idx].apply(key, check, value, dir);
        }
    }

    /// Point lookup. `O(r)`; succeeds whenever any of the key's cells is
    /// currently pure *for this key*.
    pub fn get(&self, key: u64) -> GetResult {
        let mut all_shared = true;
        for j in 0..self.cfg.hashes {
            let cell = &self.cells[self.hasher.global_cell(j, key)];
            if cell.is_empty() {
                return GetResult::NotFound;
            }
            if cell.count == 1 && cell.key_sum == key && cell.check_sum == self.hasher.checksum(key)
            {
                return GetResult::Found(cell.value_sum);
            }
            if cell.count == 1 || cell.count == -1 {
                // Pure for a *different* key: our key is not here.
                if cell.is_pure(&self.hasher) {
                    return GetResult::NotFound;
                }
            }
            all_shared &= cell.count > 1;
        }
        let _ = all_shared;
        GetResult::Inconclusive
    }

    /// Cellwise difference for key-value reconciliation.
    ///
    /// # Panics
    /// Panics if configs differ.
    pub fn subtract(&self, other: &KvIblt) -> KvIblt {
        assert_eq!(self.cfg, other.cfg, "incompatible KvIblt configs");
        let cells = self
            .cells
            .iter()
            .zip(&other.cells)
            .map(|(a, b)| KvCell {
                count: a.count - b.count,
                key_sum: a.key_sum ^ b.key_sum,
                check_sum: a.check_sum ^ b.check_sum,
                value_sum: a.value_sum ^ b.value_sum,
            })
            .collect();
        KvIblt {
            cfg: self.cfg,
            hasher: IbltHasher::new(&self.cfg),
            cells,
        }
    }

    /// List all stored pairs (non-destructive).
    pub fn list(&self) -> KvRecovery {
        self.clone().list_destructive()
    }

    /// List by peeling the table down in place.
    pub fn list_destructive(&mut self) -> KvRecovery {
        let mut out = KvRecovery::default();
        let mut queue: Vec<usize> = (0..self.cells.len())
            .filter(|&i| self.cells[i].is_pure(&self.hasher))
            .collect();
        while let Some(idx) = queue.pop() {
            let cell = self.cells[idx];
            if !cell.is_pure(&self.hasher) {
                continue;
            }
            let (key, value, dir) = (cell.key_sum, cell.value_sum, cell.count);
            let check = self.hasher.checksum(key);
            for j in 0..self.cfg.hashes {
                let c = self.hasher.global_cell(j, key);
                self.cells[c].apply(key, check, value, -dir);
                if self.cells[c].is_pure(&self.hasher) {
                    queue.push(c);
                }
            }
            if dir > 0 {
                out.positive.push((key, value));
            } else {
                out.negative.push((key, value));
            }
        }
        out.complete = self.cells.iter().all(KvCell::is_empty);
        out
    }
}

/// A concurrently updatable key-value IBLT with parallel subround listing.
pub struct AtomicKvIblt {
    cfg: IbltConfig,
    hasher: IbltHasher,
    count: Vec<AtomicI64>,
    key_sum: Vec<AtomicU64>,
    check_sum: Vec<AtomicU64>,
    value_sum: Vec<AtomicU64>,
}

impl AtomicKvIblt {
    /// Fresh empty table.
    pub fn new(cfg: IbltConfig) -> Self {
        let hasher = IbltHasher::new(&cfg);
        let total = cfg.total_cells();
        AtomicKvIblt {
            cfg,
            hasher,
            count: (0..total).map(|_| AtomicI64::new(0)).collect(),
            key_sum: (0..total).map(|_| AtomicU64::new(0)).collect(),
            check_sum: (0..total).map(|_| AtomicU64::new(0)).collect(),
            value_sum: (0..total).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Thread-safe insert.
    pub fn insert(&self, key: u64, value: u64) {
        self.update(key, value, 1);
    }

    /// Thread-safe delete.
    pub fn delete(&self, key: u64, value: u64) {
        self.update(key, value, -1);
    }

    fn update(&self, key: u64, value: u64, dir: i64) {
        let check = self.hasher.checksum(key);
        for j in 0..self.cfg.hashes {
            let idx = self.hasher.global_cell(j, key);
            self.count[idx].fetch_add(dir, Relaxed);
            self.key_sum[idx].fetch_xor(key, Relaxed);
            self.check_sum[idx].fetch_xor(check, Relaxed);
            self.value_sum[idx].fetch_xor(value, Relaxed);
        }
    }

    /// Parallel bulk insert.
    pub fn par_insert(&self, pairs: &[(u64, u64)]) {
        pairs.par_iter().for_each(|&(k, v)| self.insert(k, v));
    }

    fn read_cell(&self, idx: usize) -> KvCell {
        KvCell {
            count: self.count[idx].load(Relaxed),
            key_sum: self.key_sum[idx].load(Relaxed),
            check_sum: self.check_sum[idx].load(Relaxed),
            value_sum: self.value_sum[idx].load(Relaxed),
        }
    }

    /// Copy the current cell contents into a serial [`KvIblt`] snapshot.
    /// Sequential on purpose, mirroring [`crate::AtomicIblt::snapshot`]
    /// — and with the same consistency caveat: the loads are relaxed and
    /// per-cell, so callers needing a consistent view must fence updates
    /// around the copy.
    pub fn snapshot(&self) -> KvIblt {
        let mut t = KvIblt::new(self.cfg);
        for (idx, c) in t.cells.iter_mut().enumerate() {
            *c = self.read_cell(idx);
        }
        t
    }

    /// Parallel subround listing (same discipline as
    /// [`crate::AtomicIblt::par_recover`]); peels the table in place.
    pub fn par_list(&self) -> KvRecovery {
        let r = self.cfg.hashes;
        let per_table = self.cfg.cells_per_table;
        let mut out = KvRecovery::default();
        let mut subround = 0usize;
        let mut idle_streak = 0usize;

        loop {
            let j = subround % r;
            subround += 1;
            let base = j * per_table;
            let found: Vec<(u64, u64, i64)> = (base..base + per_table)
                .into_par_iter()
                .filter_map(|idx| {
                    let cell = self.read_cell(idx);
                    cell.is_pure(&self.hasher)
                        .then_some((cell.key_sum, cell.value_sum, cell.count))
                })
                .collect();
            if found.is_empty() {
                idle_streak += 1;
                if idle_streak >= r {
                    break;
                }
                continue;
            }
            idle_streak = 0;
            found.par_iter().for_each(|&(key, value, dir)| {
                self.update(key, value, -dir);
            });
            for (key, value, dir) in found {
                if dir > 0 {
                    out.positive.push((key, value));
                } else {
                    out.negative.push((key, value));
                }
            }
        }
        out.complete = (0..self.cfg.total_cells())
            .into_par_iter()
            .all(|idx| self.read_cell(idx).is_empty());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> IbltConfig {
        IbltConfig::for_load(3, 500, 0.6, 55)
    }

    #[test]
    fn list_roundtrip() {
        let mut t = KvIblt::new(cfg());
        for k in 0..500u64 {
            t.insert(k, k * k + 1);
        }
        let got = t.list();
        assert!(got.complete);
        assert_eq!(got.positive.len(), 500);
        for &(k, v) in &got.positive {
            assert_eq!(v, k * k + 1);
        }
    }

    #[test]
    fn get_finds_values_at_low_load() {
        let mut t = KvIblt::new(IbltConfig::for_load(3, 100, 0.2, 56));
        for k in 0..100u64 {
            t.insert(k, !k);
        }
        let mut found = 0;
        for k in 0..100u64 {
            match t.get(k) {
                GetResult::Found(v) => {
                    assert_eq!(v, !k);
                    found += 1;
                }
                GetResult::Inconclusive => {}
                GetResult::NotFound => panic!("stored key {k} reported NotFound"),
            }
        }
        // At load 0.2 the vast majority of keys have a pure cell.
        assert!(found > 80, "only {found} direct hits");
    }

    #[test]
    fn get_rejects_absent_keys() {
        let mut t = KvIblt::new(IbltConfig::for_load(3, 100, 0.2, 57));
        for k in 0..100u64 {
            t.insert(k, k + 7);
        }
        let mut definite = 0;
        for k in 1000..1100u64 {
            match t.get(k) {
                GetResult::Found(_) => panic!("absent key {k} 'found'"),
                GetResult::NotFound => definite += 1,
                GetResult::Inconclusive => {}
            }
        }
        assert!(definite > 60, "only {definite} definite rejections");
    }

    #[test]
    fn insert_delete_cancels() {
        let mut t = KvIblt::new(cfg());
        for k in 0..50u64 {
            t.insert(k, k ^ 0xff);
        }
        for k in 0..50u64 {
            t.delete(k, k ^ 0xff);
        }
        assert!(t.cells.iter().all(KvCell::is_empty));
    }

    #[test]
    fn kv_reconciliation_carries_values() {
        let c = IbltConfig::for_load(3, 64, 0.5, 58);
        let mut a = KvIblt::new(c);
        let mut b = KvIblt::new(c);
        for k in 0..10_000u64 {
            a.insert(k, k * 3);
            b.insert(k, k * 3);
        }
        a.insert(777_777, 42);
        b.insert(888_888, 43);
        let got = a.subtract(&b).list_destructive();
        assert!(got.complete);
        assert_eq!(got.positive, vec![(777_777, 42)]);
        assert_eq!(got.negative, vec![(888_888, 43)]);
    }

    #[test]
    fn parallel_list_matches_serial() {
        let c = cfg();
        let pairs: Vec<(u64, u64)> = (0..500u64).map(|k| (k * 7 + 1, k + 9)).collect();
        let mut serial = KvIblt::new(c);
        let atomic = AtomicKvIblt::new(c);
        for &(k, v) in &pairs {
            serial.insert(k, v);
        }
        atomic.par_insert(&pairs);
        let s = serial.list();
        let p = atomic.par_list();
        assert_eq!(s.complete, p.complete);
        let mut sp = s.positive;
        sp.sort_unstable();
        let mut pp = p.positive;
        pp.sort_unstable();
        assert_eq!(sp, pp);
    }

    #[test]
    fn overload_is_incomplete_but_sound() {
        let c = IbltConfig::new(3, 50, 59); // 150 cells
        let mut t = KvIblt::new(c);
        for k in 0..140u64 {
            t.insert(k, k + 1); // load 0.93
        }
        let got = t.list();
        assert!(!got.complete);
        for &(k, v) in &got.positive {
            assert!(k < 140 && v == k + 1, "fabricated pair ({k},{v})");
        }
    }
}

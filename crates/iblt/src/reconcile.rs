//! Set reconciliation via IBLT subtraction (Eppstein–Goodrich–Uyeda–
//! Varghese, "What's the Difference?").
//!
//! Two hosts hold key sets `A` and `B` that differ in at most `d` keys.
//! Each builds an IBLT of its set with a *shared* configuration sized for
//! `d` (not `|A|`!), one table is shipped across the link, the receiver
//! subtracts and decodes: keys only in `A` surface with `count = +1`, keys
//! only in `B` with `count = −1`. Communication is `O(d)` — independent of
//! the set sizes — and the decode succeeds w.h.p. as long as
//! `d / total_cells` is below the peeling threshold `c*_{2,r}`.

use crate::serial::Iblt;

/// The decoded symmetric difference of two sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SetDiff {
    /// Keys present in `a` but not `b`.
    pub only_in_a: Vec<u64>,
    /// Keys present in `b` but not `a`.
    pub only_in_b: Vec<u64>,
    /// True iff the difference decoded completely. When `false`, the
    /// difference exceeded the tables' capacity: retry with larger tables.
    pub complete: bool,
}

/// Subtract `b`'s table from `a`'s and decode the symmetric difference.
///
/// # Panics
/// Panics if the two IBLTs were built with different configs.
pub fn reconcile(a: &Iblt, b: &Iblt) -> SetDiff {
    let mut diff = a.subtract(b);
    let rec = diff.recover_destructive();
    let mut out = SetDiff {
        only_in_a: rec.positive,
        only_in_b: rec.negative,
        complete: rec.complete,
    };
    out.only_in_a.sort_unstable();
    out.only_in_b.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IbltConfig;

    fn build(cfg: IbltConfig, keys: impl IntoIterator<Item = u64>) -> Iblt {
        let mut t = Iblt::new(cfg);
        for k in keys {
            t.insert(k);
        }
        t
    }

    #[test]
    fn small_difference_reconciles() {
        // 100k-key sets differing in 40 keys, tables sized for ~64 diffs.
        let cfg = IbltConfig::for_load(3, 64, 0.5, 7);
        let shared: Vec<u64> = (0..100_000u64).map(|i| i * 3 + 7).collect();
        let mut a_keys = shared.clone();
        a_keys.extend(5_000_000..5_000_020u64); // 20 extras in A
        let mut b_keys = shared;
        b_keys.extend(6_000_000..6_000_020u64); // 20 extras in B

        let a = build(cfg, a_keys);
        let b = build(cfg, b_keys);
        let diff = reconcile(&a, &b);
        assert!(diff.complete);
        assert_eq!(diff.only_in_a, (5_000_000..5_000_020).collect::<Vec<u64>>());
        assert_eq!(diff.only_in_b, (6_000_000..6_000_020).collect::<Vec<u64>>());
    }

    #[test]
    fn identical_sets_reconcile_to_empty() {
        let cfg = IbltConfig::for_load(3, 32, 0.5, 8);
        let a = build(cfg, 0..1000u64);
        let b = build(cfg, 0..1000u64);
        let diff = reconcile(&a, &b);
        assert!(diff.complete);
        assert!(diff.only_in_a.is_empty());
        assert!(diff.only_in_b.is_empty());
    }

    #[test]
    fn oversized_difference_reports_incomplete() {
        // Tables sized for ~16 diffs, but the sets differ in 2000 keys.
        let cfg = IbltConfig::for_load(3, 16, 0.5, 9);
        let a = build(cfg, 0..1000u64);
        let b = build(cfg, 10_000..11_000u64);
        let diff = reconcile(&a, &b);
        assert!(!diff.complete, "difference of 2000 must overflow 32 cells");
    }

    #[test]
    fn one_sided_difference() {
        let cfg = IbltConfig::for_load(3, 32, 0.5, 10);
        let a = build(cfg, 0..1010u64);
        let b = build(cfg, 0..1000u64);
        let diff = reconcile(&a, &b);
        assert!(diff.complete);
        assert_eq!(diff.only_in_a, (1000..1010).collect::<Vec<u64>>());
        assert!(diff.only_in_b.is_empty());
    }
}

//! # peel-fn — XORSAT solving and static functions by peeling
//!
//! Two closely related constructions from the paper's application orbit
//! ("hash-based sketches", Bloomier filters [4], XORSAT [6]):
//!
//! * [`XorSystem`] — a sparse linear system over GF(2)^64: each equation
//!   XORs `r` variables to a 64-bit right-hand side. Peeling solves it in
//!   linear time whenever the associated hypergraph (variables = vertices,
//!   equations = edges) has an empty 2-core: repeatedly defer an equation
//!   containing a degree-1 variable, then back-substitute in reverse.
//! * [`StaticFunction`] — a Bloomier-filter-style immutable map
//!   `key → u64`: each key hashes to `r` table cells (one per group) and
//!   the stored value is the XOR of those cells. Construction is exactly an
//!   [`XorSystem`] solve.
//!
//! ## Parallel construction
//!
//! The peeling schedule from `peel-core` groups equation *claims* by round.
//! Within one round, all assignments are mutually independent:
//!
//! * the claiming variable `v` of equation `e` had degree 1 when peeled, so
//!   `v` appears in no other equation removed in this or any later round —
//!   nobody else writes `v`'s cell;
//! * another equation `f` of the same round cannot read `v`'s cell, since
//!   `v ∈ f` would have given `v` degree ≥ 2.
//!
//! Processing rounds in *reverse* order guarantees all cells an equation
//! reads are final, so each reverse round runs as one `par_iter` — giving a
//! parallel construction whose depth is the peeling round count,
//! `O(log log n)` below the threshold (Theorem 1).
//!
//! ```
//! use peel_fn::{StaticFunction, BuildOptions};
//!
//! let keys: Vec<u64> = (0..10_000u64).map(|i| i * 2 + 1).collect();
//! let values: Vec<u64> = keys.iter().map(|k| k.wrapping_mul(31)).collect();
//! let f = StaticFunction::build(&keys, &values, &BuildOptions::default()).unwrap();
//! for (k, v) in keys.iter().zip(&values) {
//!     assert_eq!(f.get(*k), *v);
//! }
//! ```

#![warn(missing_docs)]

use rayon::prelude::*;
// ordering: Relaxed — back-substitution writes each solution slot exactly
// once per level, and levels are separated by rayon fork-join barriers
// that carry the happens-before; within a level, reads only touch slots
// written by earlier levels.
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use peel_core::parallel::{peel_parallel, ParallelOpts};
use peel_core::sequential::peel_greedy;
use peel_core::trace::UNPEELED;
use peel_graph::HypergraphBuilder;

/// The 64-bit SplitMix finalizer used for key→cell placement.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A sparse XOR (GF(2)^64) linear system with uniform equation arity.
#[derive(Debug, Clone)]
pub struct XorSystem {
    num_vars: usize,
    arity: usize,
    /// Flattened variable indices: equation `e` at `e*arity..(e+1)*arity`.
    vars: Vec<u32>,
    rhs: Vec<u64>,
}

/// Why an [`XorSystem`] solve (or a [`StaticFunction`] build) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The hypergraph has a non-empty 2-core: peeling cannot triangulate
    /// the system. Contains the number of equations left in the core.
    CoreNonEmpty {
        /// Equations stuck in the 2-core.
        core_equations: u64,
    },
    /// Construction retried `attempts` times without finding a peelable
    /// hash seed.
    AttemptsExhausted {
        /// Number of attempts made.
        attempts: u32,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::CoreNonEmpty { core_equations } => {
                write!(f, "2-core is non-empty ({core_equations} equations stuck)")
            }
            SolveError::AttemptsExhausted { attempts } => {
                write!(f, "no peelable seed found in {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl XorSystem {
    /// Empty system over `num_vars` variables with `arity` variables per
    /// equation.
    pub fn new(num_vars: usize, arity: usize) -> Self {
        assert!(arity >= 2);
        XorSystem {
            num_vars,
            arity,
            vars: Vec::new(),
            rhs: Vec::new(),
        }
    }

    /// Add the equation `vars[0] ^ vars[1] ^ … = rhs`. Variables must be
    /// distinct and in range.
    pub fn push(&mut self, vars: &[u32], rhs: u64) {
        assert_eq!(vars.len(), self.arity, "arity mismatch");
        for (i, &v) in vars.iter().enumerate() {
            assert!((v as usize) < self.num_vars, "variable out of range");
            assert!(!vars[..i].contains(&v), "duplicate variable in equation");
        }
        self.vars.extend_from_slice(vars);
        self.rhs.push(rhs);
    }

    /// Number of equations.
    pub fn len(&self) -> usize {
        self.rhs.len()
    }

    /// True when the system has no equations.
    pub fn is_empty(&self) -> bool {
        self.rhs.is_empty()
    }

    /// Check a candidate solution.
    pub fn check(&self, solution: &[u64]) -> bool {
        assert_eq!(solution.len(), self.num_vars);
        self.vars
            .chunks_exact(self.arity)
            .zip(&self.rhs)
            .all(|(vars, &rhs)| vars.iter().fold(0u64, |acc, &v| acc ^ solution[v as usize]) == rhs)
    }

    /// Solve by sequential peeling + back-substitution.
    pub fn solve(&self) -> Result<Vec<u64>, SolveError> {
        let g = self.graph();
        let out = peel_greedy(&g, 2);
        if out.core_edges > 0 {
            return Err(SolveError::CoreNonEmpty {
                core_equations: out.core_edges,
            });
        }
        let mut solution = vec![0u64; self.num_vars];
        // Back-substitute in reverse peel order: when edge e was claimed by
        // v, all other endpoints' cells are final by the time we reach it.
        let mut claimed: Vec<(u32, u32)> = out
            .edge_killer
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != UNPEELED)
            .map(|(e, _)| (out.edge_kill_pos[e], e as u32))
            .collect();
        claimed.sort_unstable(); // by peel position
        for &(_, e) in claimed.iter().rev() {
            let v = out.edge_killer[e as usize];
            let base = e as usize * self.arity;
            let mut acc = self.rhs[e as usize];
            for &w in &self.vars[base..base + self.arity] {
                if w != v {
                    acc ^= solution[w as usize];
                }
            }
            solution[v as usize] = acc;
        }
        debug_assert!(self.check(&solution));
        Ok(solution)
    }

    /// Solve with parallel peeling and parallel per-round back-substitution
    /// (see the crate docs for the independence argument).
    pub fn solve_parallel(&self) -> Result<Vec<u64>, SolveError> {
        let g = self.graph();
        let out = peel_parallel(&g, 2, &ParallelOpts::default());
        if out.core_edges > 0 {
            return Err(SolveError::CoreNonEmpty {
                core_equations: out.core_edges,
            });
        }
        let solution: Vec<AtomicU64> = (0..self.num_vars).map(|_| AtomicU64::new(0)).collect();
        let schedule = out.claims_by_round();
        for round in schedule.iter().rev() {
            round.par_iter().for_each(|&(e, v)| {
                let base = e as usize * self.arity;
                let mut acc = self.rhs[e as usize];
                for &w in &self.vars[base..base + self.arity] {
                    if w != v {
                        acc ^= solution[w as usize].load(Relaxed);
                    }
                }
                solution[v as usize].store(acc, Relaxed);
            });
        }
        let solution: Vec<u64> = solution.into_iter().map(|a| a.into_inner()).collect();
        debug_assert!(self.check(&solution));
        Ok(solution)
    }

    fn graph(&self) -> peel_graph::Hypergraph {
        let mut b = HypergraphBuilder::new(self.num_vars, self.arity)
            .with_capacity(self.len())
            .skip_distinct_check();
        b.push_flat(&self.vars);
        b.build().expect("validated on push")
    }
}

/// Options for [`StaticFunction::build`].
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Hash functions / cell groups per key (default 3).
    pub hashes: usize,
    /// Table cells per key (default 1.30 — load ≈ 0.77, safely below
    /// `c*_{2,3} ≈ 0.818`).
    pub cells_per_key: f64,
    /// Hash-seed retry budget when the 2-core is non-empty (default 16).
    pub max_attempts: u32,
    /// Use the parallel peeler + parallel assignment (default true).
    pub parallel: bool,
    /// Base hash seed.
    pub seed: u64,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            hashes: 3,
            cells_per_key: 1.30,
            max_attempts: 16,
            parallel: true,
            seed: 0x5eed_f00d,
        }
    }
}

/// An immutable `u64 → u64` map built by peeling (Bloomier-filter style).
///
/// Lookups XOR `r` cells: `O(1)` time, no branches, ~`1.3·8` bytes/key at
/// the default load. Querying a key that was **not** in the build set
/// returns an arbitrary value — add a fingerprint to values if membership
/// matters (classic Bloomier trade-off).
#[derive(Debug, Clone)]
pub struct StaticFunction {
    group_size: usize,
    hashes: usize,
    group_seeds: Vec<u64>,
    cells: Vec<u64>,
}

impl StaticFunction {
    /// Build the function mapping `keys[i] → values[i]`.
    ///
    /// Keys must be distinct. Retries with derived seeds if the hash graph
    /// has a non-empty 2-core (probability `O(1)` per attempt at the
    /// default load, so failures are essentially impossible within the
    /// default 16 attempts unless keys repeat).
    pub fn build(keys: &[u64], values: &[u64], opts: &BuildOptions) -> Result<Self, SolveError> {
        assert_eq!(keys.len(), values.len());
        assert!(opts.hashes >= 2);
        let total_cells =
            ((keys.len() as f64 * opts.cells_per_key).ceil() as usize).max(opts.hashes);
        // Floor the group size: with just a handful of cells per group,
        // distinct keys collide on *all* r cells with non-negligible
        // probability (a guaranteed-unpeelable duplicate edge), so tiny key
        // sets would exhaust every retry. A few spare cells make that
        // probability negligible and cost nothing in absolute terms.
        let group_size = total_cells.div_ceil(opts.hashes).max(8);

        for attempt in 0..opts.max_attempts {
            let seed = mix64(opts.seed ^ mix64(attempt as u64));
            let group_seeds: Vec<u64> = (0..opts.hashes)
                .map(|j| mix64(seed ^ mix64(j as u64 + 1)))
                .collect();

            let mut sys = XorSystem::new(opts.hashes * group_size, opts.hashes);
            let mut eq = vec![0u32; opts.hashes];
            for (&k, &v) in keys.iter().zip(values) {
                for (j, slot) in eq.iter_mut().enumerate() {
                    *slot = cell_index(&group_seeds, group_size, j, k) as u32;
                }
                sys.push(&eq, v);
            }

            let solved = if opts.parallel {
                sys.solve_parallel()
            } else {
                sys.solve()
            };
            match solved {
                Ok(cells) => {
                    return Ok(StaticFunction {
                        group_size,
                        hashes: opts.hashes,
                        group_seeds,
                        cells,
                    })
                }
                Err(SolveError::CoreNonEmpty { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(SolveError::AttemptsExhausted {
            attempts: opts.max_attempts,
        })
    }

    /// Look up a key from the build set. Keys outside the build set return
    /// arbitrary values.
    #[inline]
    pub fn get(&self, key: u64) -> u64 {
        let mut acc = 0u64;
        for j in 0..self.hashes {
            acc ^= self.cells[cell_index(&self.group_seeds, self.group_size, j, key)];
        }
        acc
    }

    /// Total number of table cells.
    pub fn table_size(&self) -> usize {
        self.cells.len()
    }

    /// Bits of table storage per built key (space accounting helper).
    pub fn bits_per_key(&self, num_keys: usize) -> f64 {
        (self.cells.len() * 64) as f64 / num_keys as f64
    }
}

#[inline]
fn cell_index(group_seeds: &[u64], group_size: usize, j: usize, key: u64) -> usize {
    let h = mix64(key ^ group_seeds[j]);
    j * group_size + ((h as u128 * group_size as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_system() -> XorSystem {
        // vars 0..5; a peelable chain of equations.
        let mut s = XorSystem::new(5, 2);
        s.push(&[0, 1], 0xa);
        s.push(&[1, 2], 0xb);
        s.push(&[2, 3], 0xc);
        s.push(&[3, 4], 0xd);
        s
    }

    #[test]
    fn solves_chain_system() {
        let s = demo_system();
        let sol = s.solve().unwrap();
        assert!(s.check(&sol));
        let par = s.solve_parallel().unwrap();
        assert!(s.check(&par));
    }

    #[test]
    fn detects_unpeelable_core() {
        // Triangle: x0^x1, x1^x2, x2^x0 — 2-core non-empty.
        let mut s = XorSystem::new(3, 2);
        s.push(&[0, 1], 1);
        s.push(&[1, 2], 2);
        s.push(&[2, 0], 3);
        match s.solve() {
            Err(SolveError::CoreNonEmpty { core_equations }) => {
                assert_eq!(core_equations, 3)
            }
            other => panic!("expected core failure, got {other:?}"),
        }
        assert!(s.solve_parallel().is_err());
    }

    #[test]
    fn random_sparse_system_solves() {
        // 3-ary random system at density 0.7 < c*_{2,3} ≈ 0.818.
        use peel_graph::models::Gnm;
        use peel_graph::rng::Xoshiro256StarStar;
        let mut rng = Xoshiro256StarStar::new(31);
        let n = 20_000;
        let g = Gnm::new(n, 0.7, 3).sample(&mut rng);
        let mut s = XorSystem::new(n, 3);
        for (e, vs) in g.edges() {
            s.push(vs, mix64(e as u64));
        }
        let sol = s.solve().unwrap();
        assert!(s.check(&sol));
        let par = s.solve_parallel().unwrap();
        assert!(s.check(&par));
    }

    #[test]
    fn empty_system_is_trivial() {
        let s = XorSystem::new(10, 3);
        assert!(s.is_empty());
        let sol = s.solve().unwrap();
        assert_eq!(sol, vec![0u64; 10]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_vars() {
        let mut s = XorSystem::new(4, 3);
        s.push(&[0, 1, 0], 7);
    }

    #[test]
    fn static_function_roundtrip() {
        let keys: Vec<u64> = (0..5_000u64).map(|i| i * 977 + 13).collect();
        let values: Vec<u64> = keys.iter().map(|&k| mix64(k)).collect();
        let f = StaticFunction::build(&keys, &values, &BuildOptions::default()).unwrap();
        for (k, v) in keys.iter().zip(&values) {
            assert_eq!(f.get(*k), *v, "key {k}");
        }
        // Space accounting: ~1.3 cells/key × 64 bits.
        let bpk = f.bits_per_key(keys.len());
        assert!(bpk < 64.0 * 1.4, "bits/key {bpk}");
    }

    #[test]
    fn static_function_serial_build_matches() {
        let keys: Vec<u64> = (0..2_000u64).map(mix64).collect();
        let values: Vec<u64> = keys.iter().map(|&k| k.rotate_left(17)).collect();
        let serial = StaticFunction::build(
            &keys,
            &values,
            &BuildOptions {
                parallel: false,
                ..Default::default()
            },
        )
        .unwrap();
        for (k, v) in keys.iter().zip(&values) {
            assert_eq!(serial.get(*k), *v);
        }
    }

    #[test]
    fn static_function_r4_works() {
        let keys: Vec<u64> = (0..3_000u64).map(|i| i ^ 0xf00d).collect();
        let values: Vec<u64> = keys.iter().map(|&k| k + 1).collect();
        let opts = BuildOptions {
            hashes: 4,
            cells_per_key: 1.35, // load ~0.74 < c*_{2,4} ≈ 0.772
            ..Default::default()
        };
        let f = StaticFunction::build(&keys, &values, &opts).unwrap();
        for (k, v) in keys.iter().zip(&values) {
            assert_eq!(f.get(*k), *v);
        }
    }

    #[test]
    fn duplicate_keys_exhaust_attempts() {
        // Two copies of one key form an unpeelable duplicate edge pair...
        // actually two identical edges each of multiplicity 1 in the graph
        // give every endpoint degree 2 — a 2-core — so every seed fails.
        let keys = vec![42u64, 42];
        let values = vec![1u64, 2];
        let opts = BuildOptions {
            max_attempts: 4,
            ..Default::default()
        };
        match StaticFunction::build(&keys, &values, &opts) {
            Err(SolveError::AttemptsExhausted { attempts }) => assert_eq!(attempts, 4),
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn overloaded_table_fails_then_bigger_succeeds() {
        let keys: Vec<u64> = (0..1_000u64).map(|i| mix64(i ^ 99)).collect();
        let values = vec![7u64; 1_000];
        let tight = BuildOptions {
            cells_per_key: 1.05, // load ~0.95 ≫ threshold
            max_attempts: 3,
            ..Default::default()
        };
        assert!(StaticFunction::build(&keys, &values, &tight).is_err());
        let roomy = BuildOptions::default();
        assert!(StaticFunction::build(&keys, &values, &roomy).is_ok());
    }
}

//! Property-based tests for XORSAT solving and static functions.

use proptest::prelude::*;

use peel_fn::{BuildOptions, StaticFunction, XorSystem};

/// Random uniform-arity XOR system over a small variable set, sparse enough
/// that many instances peel completely.
fn arb_system() -> impl Strategy<Value = XorSystem> {
    (2usize..=4, 6usize..=40).prop_flat_map(|(arity, nvars)| {
        let max_eqs = nvars; // density <= 1
        proptest::collection::vec(
            (
                proptest::collection::vec(0u32..nvars as u32, arity),
                any::<u64>(),
            ),
            0..max_eqs,
        )
        .prop_map(move |rows| {
            let mut sys = XorSystem::new(nvars, arity);
            for (mut vars, rhs) in rows {
                // Repair duplicates deterministically.
                for i in 0..vars.len() {
                    while vars[..i].contains(&vars[i]) {
                        vars[i] = (vars[i] + 1) % nvars as u32;
                    }
                }
                sys.push(&vars, rhs);
            }
            sys
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whenever the solver returns a solution, it satisfies the system;
    /// serial and parallel agree on solvability.
    #[test]
    fn solutions_always_check(sys in arb_system()) {
        let serial = sys.solve();
        let parallel = sys.solve_parallel();
        prop_assert_eq!(serial.is_ok(), parallel.is_ok(),
            "solvers disagree on feasibility-by-peeling");
        if let Ok(sol) = serial {
            prop_assert!(sys.check(&sol));
        }
        if let Ok(sol) = parallel {
            prop_assert!(sys.check(&sol));
        }
    }

    /// A built static function answers every build key correctly — for any
    /// key set (dedup'd) and any values.
    #[test]
    fn static_function_total_correctness(
        pairs in proptest::collection::btree_map(any::<u64>(), any::<u64>(), 1..200),
        hashes in 3usize..=4,
    ) {
        let keys: Vec<u64> = pairs.keys().copied().collect();
        let values: Vec<u64> = pairs.values().copied().collect();
        let opts = BuildOptions {
            hashes,
            cells_per_key: 1.5, // roomy: build failures become negligible
            max_attempts: 24,
            ..Default::default()
        };
        let f = StaticFunction::build(&keys, &values, &opts);
        // With 24 attempts at load 2/3 this essentially cannot fail; treat
        // failure as a bug rather than discarding the case.
        let f = f.expect("build should succeed at this load");
        for (k, v) in pairs {
            prop_assert_eq!(f.get(k), v);
        }
    }

    /// Serial and parallel builds produce functionally identical tables.
    #[test]
    fn serial_and_parallel_builds_agree(
        keys in proptest::collection::btree_set(any::<u64>(), 1..120),
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let values: Vec<u64> = keys.iter().map(|k| k.wrapping_mul(3)).collect();
        for parallel in [false, true] {
            let opts = BuildOptions { parallel, cells_per_key: 1.5, max_attempts: 24, ..Default::default() };
            let f = StaticFunction::build(&keys, &values, &opts).expect("build");
            for (k, v) in keys.iter().zip(&values) {
                prop_assert_eq!(f.get(*k), *v);
            }
        }
    }
}

//! # peel-sat — the pure literal rule as a parallel peeling process
//!
//! The paper's introduction lists "satisfiability of random boolean
//! formulae" among the peeling applications (refs [3], [19]; Molloy's
//! analysis of the pure-literal-rule threshold is the same machinery that
//! yields `c*_{k,r}`). The *pure literal rule* repeatedly:
//!
//! 1. finds a **pure** variable — one whose occurrences all have the same
//!    sign;
//! 2. assigns it to satisfy those occurrences;
//! 3. deletes every (now satisfied) clause containing it.
//!
//! Clause deletion can only *create* purity, never destroy it, so — exactly
//! like vertex peeling — all pure variables of a round can be processed
//! simultaneously, and the fixpoint is independent of order. This crate
//! implements the round-synchronous rule serially and with rayon, with the
//! same round accounting as `peel-core` (for random 3-CNF the number of
//! rounds collapses `log log`-style below the pure-literal threshold
//! density ≈ 1.63).
//!
//! ```
//! use peel_sat::{random_kcnf, pure_literal_rounds};
//! use peel_graph::rng::SplitMix64;
//!
//! let cnf = random_kcnf(2_000, 2_000, 3, &mut SplitMix64::new(5)); // density 1.0
//! let out = pure_literal_rounds(&cnf);
//! assert!(out.satisfied_all);
//! assert!(cnf.is_satisfied_by(&out.assignment));
//! ```

#![warn(missing_docs)]

use rand::RngCore;
use rayon::prelude::*;
// ordering: every atomic op here is Relaxed — occurrence counters are
// commutative fetch_add/fetch_sub, clause claims are decided by a single
// atomic `swap`, and phases of the parallel unit-propagation loop are
// separated by rayon fork-join barriers, which carry the cross-phase
// happens-before. No data is published through these atomics.
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering::Relaxed};

use peel_graph::rng::sample_distinct;

/// A CNF formula. Variables are `0..num_vars`; a literal is `(var, sign)`
/// with `sign = true` for the positive literal.
#[derive(Debug, Clone)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// Clauses as lists of literals.
    pub clauses: Vec<Vec<(u32, bool)>>,
}

impl Cnf {
    /// Check whether `assignment` (with `None` = unassigned) satisfies
    /// every clause.
    pub fn is_satisfied_by(&self, assignment: &[Option<bool>]) -> bool {
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|&(v, sign)| assignment[v as usize] == Some(sign))
        })
    }
}

/// Sample a uniformly random k-CNF with `num_clauses` clauses over
/// `num_vars` variables: each clause picks `k` distinct variables and
/// independent random signs.
pub fn random_kcnf<R: RngCore>(num_vars: usize, num_clauses: usize, k: usize, rng: &mut R) -> Cnf {
    assert!(k >= 1 && num_vars >= k);
    let mut clauses = Vec::with_capacity(num_clauses);
    let mut buf = vec![0u32; k];
    for _ in 0..num_clauses {
        sample_distinct(rng, num_vars as u64, k, &mut buf);
        let clause: Vec<(u32, bool)> = buf.iter().map(|&v| (v, rng.next_u64() & 1 == 1)).collect();
        clauses.push(clause);
    }
    Cnf { num_vars, clauses }
}

/// Result of running the round-synchronous pure literal rule to fixpoint.
#[derive(Debug, Clone)]
pub struct PureLiteralOutcome {
    /// True iff every clause was satisfied (the "empty core" analogue).
    pub satisfied_all: bool,
    /// Number of productive rounds.
    pub rounds: u32,
    /// The partial assignment produced (pure variables only).
    pub assignment: Vec<Option<bool>>,
    /// Clauses still unsatisfied at the fixpoint.
    pub remaining_clauses: usize,
    /// Clauses removed per round.
    pub per_round: Vec<u64>,
}

/// Serial round-synchronous pure literal elimination.
pub fn pure_literal_rounds(cnf: &Cnf) -> PureLiteralOutcome {
    let n = cnf.num_vars;
    let m = cnf.clauses.len();
    let mut pos = vec![0u32; n];
    let mut neg = vec![0u32; n];
    for clause in &cnf.clauses {
        for &(v, sign) in clause {
            if sign {
                pos[v as usize] += 1;
            } else {
                neg[v as usize] += 1;
            }
        }
    }
    // Occurrence lists.
    let mut occ: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (c, clause) in cnf.clauses.iter().enumerate() {
        for &(v, _) in clause {
            occ[v as usize].push(c as u32);
        }
    }

    let mut assignment: Vec<Option<bool>> = vec![None; n];
    let mut clause_alive = vec![true; m];
    let mut alive = m;
    let mut rounds = 0u32;
    let mut per_round = Vec::new();

    loop {
        // Find this round's pure variables (unassigned, occurrences all one
        // sign, at least one occurrence).
        let pure: Vec<(u32, bool)> = (0..n as u32)
            .filter(|&v| assignment[v as usize].is_none())
            .filter_map(|v| {
                let (p, q) = (pos[v as usize], neg[v as usize]);
                if p > 0 && q == 0 {
                    Some((v, true))
                } else if q > 0 && p == 0 {
                    Some((v, false))
                } else {
                    None
                }
            })
            .collect();
        if pure.is_empty() {
            break;
        }
        rounds += 1;
        let mut removed = 0u64;
        for &(v, sign) in &pure {
            assignment[v as usize] = Some(sign);
        }
        for &(v, _) in &pure {
            for &c in &occ[v as usize] {
                if !clause_alive[c as usize] {
                    continue;
                }
                clause_alive[c as usize] = false;
                removed += 1;
                for &(w, wsign) in &cnf.clauses[c as usize] {
                    if wsign {
                        pos[w as usize] -= 1;
                    } else {
                        neg[w as usize] -= 1;
                    }
                }
            }
        }
        alive -= removed as usize;
        per_round.push(removed);
    }

    PureLiteralOutcome {
        satisfied_all: alive == 0,
        rounds,
        assignment,
        remaining_clauses: alive,
        per_round,
    }
}

/// Parallel round-synchronous pure literal elimination (rayon).
///
/// Identical semantics (and round counts) as [`pure_literal_rounds`]:
/// purity is evaluated against start-of-round occurrence counts; clause
/// removals race benignly through a per-clause claim flag and atomic
/// occurrence decrements.
pub fn pure_literal_parallel(cnf: &Cnf) -> PureLiteralOutcome {
    let n = cnf.num_vars;
    let m = cnf.clauses.len();
    let pos: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let neg: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    for clause in &cnf.clauses {
        for &(v, sign) in clause {
            if sign {
                pos[v as usize].fetch_add(1, Relaxed);
            } else {
                neg[v as usize].fetch_add(1, Relaxed);
            }
        }
    }
    let mut occ: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (c, clause) in cnf.clauses.iter().enumerate() {
        for &(v, _) in clause {
            occ[v as usize].push(c as u32);
        }
    }

    let assigned: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(2)).collect(); // 2 = none
    let clause_alive: Vec<AtomicBool> = (0..m).map(|_| AtomicBool::new(true)).collect();
    let mut alive = m as u64;
    let mut rounds = 0u32;
    let mut per_round = Vec::new();

    loop {
        // Phase 1: find pure variables against start-of-round counts.
        let pure: Vec<(u32, bool)> = (0..n as u32)
            .into_par_iter()
            .filter(|&v| assigned[v as usize].load(Relaxed) == 2)
            .filter_map(|v| {
                let p = pos[v as usize].load(Relaxed);
                let q = neg[v as usize].load(Relaxed);
                if p > 0 && q == 0 {
                    Some((v, true))
                } else if q > 0 && p == 0 {
                    Some((v, false))
                } else {
                    None
                }
            })
            .collect();
        if pure.is_empty() {
            break;
        }
        rounds += 1;

        // Phase 2: assign.
        pure.par_iter().for_each(|&(v, sign)| {
            assigned[v as usize].store(sign as u32, Relaxed);
        });

        // Phase 3: delete satisfied clauses (claim via swap) and decrement
        // the occurrence counts of their literals.
        let removed: u64 = pure
            .par_iter()
            .map(|&(v, _)| {
                let mut cnt = 0u64;
                for &c in &occ[v as usize] {
                    if clause_alive[c as usize].swap(false, Relaxed) {
                        cnt += 1;
                        for &(w, wsign) in &cnf.clauses[c as usize] {
                            if wsign {
                                pos[w as usize].fetch_sub(1, Relaxed);
                            } else {
                                neg[w as usize].fetch_sub(1, Relaxed);
                            }
                        }
                    }
                }
                cnt
            })
            .sum();
        alive -= removed;
        per_round.push(removed);
    }

    PureLiteralOutcome {
        satisfied_all: alive == 0,
        rounds,
        assignment: assigned
            .into_iter()
            .map(|a| match a.into_inner() {
                0 => Some(false),
                1 => Some(true),
                _ => None,
            })
            .collect(),
        remaining_clauses: alive as usize,
        per_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peel_graph::rng::Xoshiro256StarStar;

    fn lit(v: u32, sign: bool) -> (u32, bool) {
        (v, sign)
    }

    #[test]
    fn all_positive_formula_one_round() {
        let cnf = Cnf {
            num_vars: 3,
            clauses: vec![
                vec![lit(0, true), lit(1, true)],
                vec![lit(1, true), lit(2, true)],
            ],
        };
        let out = pure_literal_rounds(&cnf);
        assert!(out.satisfied_all);
        assert_eq!(out.rounds, 1);
        assert!(cnf.is_satisfied_by(&out.assignment));
    }

    #[test]
    fn chained_purity_takes_multiple_rounds() {
        // x0 pure (+). Removing its clause makes x1 pure (−), etc.
        let cnf = Cnf {
            num_vars: 3,
            clauses: vec![
                vec![lit(0, true), lit(1, true)],
                vec![lit(1, false), lit(2, true)],
                vec![lit(2, false), lit(1, false)],
            ],
        };
        // pos/neg: x0: 1/0 pure+. x1: 1/2 not pure. x2: 1/1 not pure.
        let out = pure_literal_rounds(&cnf);
        assert!(out.satisfied_all);
        assert!(out.rounds >= 2, "rounds = {}", out.rounds);
        assert!(cnf.is_satisfied_by(&out.assignment));
    }

    #[test]
    fn stuck_formula_reports_remaining() {
        // x0 ∨ x1, ¬x0 ∨ x1, x0 ∨ ¬x1, ¬x0 ∨ ¬x1: no pure literal exists.
        let cnf = Cnf {
            num_vars: 2,
            clauses: vec![
                vec![lit(0, true), lit(1, true)],
                vec![lit(0, false), lit(1, true)],
                vec![lit(0, true), lit(1, false)],
                vec![lit(0, false), lit(1, false)],
            ],
        };
        let out = pure_literal_rounds(&cnf);
        assert!(!out.satisfied_all);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.remaining_clauses, 4);
    }

    #[test]
    fn parallel_matches_serial() {
        for seed in 0..5u64 {
            let mut rng = Xoshiro256StarStar::new(seed);
            let cnf = random_kcnf(3_000, 3_600, 3, &mut rng); // density 1.2
            let a = pure_literal_rounds(&cnf);
            let b = pure_literal_parallel(&cnf);
            assert_eq!(a.satisfied_all, b.satisfied_all, "seed {seed}");
            assert_eq!(a.rounds, b.rounds, "seed {seed}");
            assert_eq!(a.remaining_clauses, b.remaining_clauses);
            assert_eq!(a.per_round, b.per_round);
            if b.satisfied_all {
                assert!(cnf.is_satisfied_by(&b.assignment));
            }
        }
    }

    #[test]
    fn low_density_random_3cnf_succeeds() {
        let mut rng = Xoshiro256StarStar::new(42);
        let cnf = random_kcnf(20_000, 20_000, 3, &mut rng); // density 1.0 < ~1.63
        let out = pure_literal_rounds(&cnf);
        assert!(out.satisfied_all);
        assert!(cnf.is_satisfied_by(&out.assignment));
        // Rounds should be modest (log log style), not linear.
        assert!(out.rounds < 40, "rounds = {}", out.rounds);
    }

    #[test]
    fn high_density_random_3cnf_gets_stuck() {
        let mut rng = Xoshiro256StarStar::new(43);
        let cnf = random_kcnf(10_000, 25_000, 3, &mut rng); // density 2.5 > ~1.63
        let out = pure_literal_rounds(&cnf);
        assert!(!out.satisfied_all);
        assert!(out.remaining_clauses > 0);
    }

    #[test]
    fn partial_assignment_never_falsifies_removed_clauses() {
        let mut rng = Xoshiro256StarStar::new(44);
        let cnf = random_kcnf(1_000, 1_500, 3, &mut rng);
        let out = pure_literal_rounds(&cnf);
        // Every clause NOT in the remaining set must be satisfied.
        let satisfied = cnf
            .clauses
            .iter()
            .filter(|clause| {
                clause
                    .iter()
                    .any(|&(v, sign)| out.assignment[v as usize] == Some(sign))
            })
            .count();
        assert_eq!(satisfied, cnf.clauses.len() - out.remaining_clauses);
    }

    #[test]
    fn round_trace_sums_to_removed() {
        let mut rng = Xoshiro256StarStar::new(45);
        let cnf = random_kcnf(2_000, 2_400, 3, &mut rng);
        let out = pure_literal_rounds(&cnf);
        let removed: u64 = out.per_round.iter().sum();
        assert_eq!(removed as usize + out.remaining_clauses, cnf.clauses.len());
    }
}

//! Property-based tests for the pure literal rule.

use proptest::prelude::*;

use peel_sat::{pure_literal_parallel, pure_literal_rounds, Cnf};

/// Arbitrary CNF over a small variable set; clauses of width 1–4 with
/// distinct variables.
fn arb_cnf() -> impl Strategy<Value = Cnf> {
    (4usize..=30).prop_flat_map(|num_vars| {
        let clause = proptest::collection::vec(
            (0u32..num_vars as u32, any::<bool>()),
            1..=4usize.min(num_vars),
        )
        .prop_map(move |mut lits| {
            // Repair duplicate variables inside a clause (shift modulo the
            // variable count; clause width <= num_vars so this terminates).
            for i in 0..lits.len() {
                while lits[..i].iter().any(|&(v, _)| v == lits[i].0) {
                    lits[i].0 = (lits[i].0 + 1) % num_vars as u32;
                }
            }
            lits
        });
        proptest::collection::vec(clause, 0..60).prop_map(move |clauses| Cnf { num_vars, clauses })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Serial and parallel elimination agree on everything observable.
    #[test]
    fn parallel_matches_serial(cnf in arb_cnf()) {
        let a = pure_literal_rounds(&cnf);
        let b = pure_literal_parallel(&cnf);
        prop_assert_eq!(a.satisfied_all, b.satisfied_all);
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(a.remaining_clauses, b.remaining_clauses);
        prop_assert_eq!(a.per_round, b.per_round);
        prop_assert_eq!(a.assignment, b.assignment);
    }

    /// Every clause the rule eliminated is genuinely satisfied by the
    /// produced partial assignment; when all clauses are eliminated the
    /// assignment satisfies the formula.
    #[test]
    fn eliminated_clauses_are_satisfied(cnf in arb_cnf()) {
        let out = pure_literal_rounds(&cnf);
        let satisfied = cnf.clauses.iter().filter(|clause| {
            clause.iter().any(|&(v, sign)| out.assignment[v as usize] == Some(sign))
        }).count();
        prop_assert_eq!(satisfied, cnf.clauses.len() - out.remaining_clauses);
        if out.satisfied_all {
            prop_assert!(cnf.is_satisfied_by(&out.assignment));
        }
        let removed: u64 = out.per_round.iter().sum();
        prop_assert_eq!(removed as usize + out.remaining_clauses, cnf.clauses.len());
    }

    /// The fixpoint really is stuck: no pure literal exists among the
    /// remaining clauses.
    #[test]
    fn fixpoint_has_no_pure_literal(cnf in arb_cnf()) {
        let out = pure_literal_rounds(&cnf);
        // Rebuild the residual formula.
        let residual: Vec<&Vec<(u32, bool)>> = cnf.clauses.iter().filter(|clause| {
            !clause.iter().any(|&(v, sign)| out.assignment[v as usize] == Some(sign))
        }).collect();
        let mut pos = vec![0u32; cnf.num_vars];
        let mut neg = vec![0u32; cnf.num_vars];
        for clause in &residual {
            for &(v, sign) in clause.iter() {
                if sign { pos[v as usize] += 1 } else { neg[v as usize] += 1 }
            }
        }
        for v in 0..cnf.num_vars {
            let pure = (pos[v] > 0 && neg[v] == 0) || (neg[v] > 0 && pos[v] == 0);
            prop_assert!(!pure, "variable {} is still pure at the fixpoint", v);
        }
    }

    /// Adding clauses can only hurt: the satisfied-all outcome is monotone
    /// under clause removal (test by comparing a formula with its prefix).
    #[test]
    fn prefix_monotonicity(cnf in arb_cnf(), cut in 0usize..30) {
        prop_assume!(!cnf.clauses.is_empty());
        let cut = cut % cnf.clauses.len();
        let prefix = Cnf {
            num_vars: cnf.num_vars,
            clauses: cnf.clauses[..cut].to_vec(),
        };
        let full = pure_literal_rounds(&cnf);
        let pre = pure_literal_rounds(&prefix);
        if full.satisfied_all {
            prop_assert!(pre.satisfied_all,
                "a satisfiable-by-purity formula has satisfiable prefixes");
        }
    }
}

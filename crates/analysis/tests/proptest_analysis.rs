//! Property-based tests for the analytical toolkit: structural facts the
//! theory guarantees for *all* valid parameters, not just the paper's
//! examples.

use proptest::prelude::*;

use peel_analysis::fixedpoint::above_threshold;
use peel_analysis::poisson::{cdf, pmf, tail_ge};
use peel_analysis::recurrence::Idealized;
use peel_analysis::subtable::SubtableRecurrence;
use peel_analysis::threshold::{c_star, threshold};

/// Valid (k, r) pairs: k, r >= 2, k + r >= 5, kept small enough for fast
/// numerics.
fn arb_kr() -> impl Strategy<Value = (u32, u32)> {
    (2u32..=6, 2u32..=6).prop_filter("paper excludes k = r = 2", |&(k, r)| k + r >= 5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Poisson basics for arbitrary means: pmf sums to 1, cdf+tail = 1,
    /// tails are monotone in both arguments.
    #[test]
    fn poisson_identities(mu in 0.0f64..30.0, k in 1u32..12) {
        let total: f64 = (0..200).map(|j| pmf(mu, j)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!((cdf(mu, k - 1) + tail_ge(mu, k) - 1.0).abs() < 1e-9);
        prop_assert!(tail_ge(mu, k) >= tail_ge(mu, k + 1) - 1e-12);
        prop_assert!(tail_ge(mu + 0.5, k) >= tail_ge(mu, k) - 1e-12);
    }

    /// The threshold is a true separatrix for the recurrence: strictly
    /// below c*, β collapses to 0; strictly above, it stabilizes > 0.
    #[test]
    fn threshold_separates_recurrence((k, r) in arb_kr(), gap in 0.02f64..0.3) {
        let t = threshold(k, r).unwrap();

        let below = t.c_star * (1.0 - gap);
        let mut it = Idealized::new(k, r, below);
        let mut beta_end = f64::NAN;
        for _ in 0..100_000 {
            let s = it.step();
            beta_end = s.beta;
            if s.beta < 1e-12 { break; }
        }
        prop_assert!(beta_end < 1e-9,
            "β should vanish below threshold (k={}, r={}, c={}): {}", k, r, below, beta_end);

        let above = t.c_star * (1.0 + gap);
        let a = above_threshold(k, r, above);
        prop_assert!(a.is_some(), "β must stabilize above threshold");
        let a = a.unwrap();
        prop_assert!(a.beta > 0.0 && a.lambda > 0.0);
        prop_assert!(a.contraction > 0.0 && a.contraction < 1.0,
            "contraction {} outside (0,1)", a.contraction);
    }

    /// λ_i and ρ_i are probabilities, with λ_i <= ρ_i (root needs one more
    /// surviving edge), and β_i is monotone non-increasing below threshold.
    #[test]
    fn recurrence_is_wellformed((k, r) in arb_kr(), frac in 0.1f64..0.95) {
        let c = c_star(k, r).unwrap() * frac;
        let mut prev_beta = f64::INFINITY;
        let mut it = Idealized::new(k, r, c);
        for _ in 0..60 {
            let s = it.step();
            prop_assert!((0.0..=1.0).contains(&s.rho));
            prop_assert!((0.0..=1.0).contains(&s.lambda));
            prop_assert!(s.lambda <= s.rho + 1e-12);
            prop_assert!(s.beta <= prev_beta + 1e-12);
            prev_beta = s.beta;
        }
    }

    /// Subtable recurrence dominates the plain one: after any full round,
    /// the subtable survivor fraction is <= the plain λ (peeling earlier
    /// subtables within the round only helps), and per-subround λ' is
    /// non-increasing.
    #[test]
    fn subtable_dominates_plain((k, r) in arb_kr(), frac in 0.1f64..0.9) {
        prop_assume!(r >= 3); // Theorem 7 needs r >= 3
        let c = c_star(k, r).unwrap() * frac;
        let plain = Idealized::new(k, r, c).lambda_series(8);
        let steps = SubtableRecurrence::new(k, r, c).steps(8);
        let mut prev = f64::INFINITY;
        for s in &steps {
            prop_assert!(s.lambda_prime <= prev + 1e-12);
            prev = s.lambda_prime;
        }
        for (i, lam) in plain.iter().enumerate() {
            let end_of_round = &steps[(i + 1) * r as usize - 1];
            prop_assert!(end_of_round.lambda <= lam + 1e-12,
                "round {}: subtable λ {} > plain λ {}", i + 1, end_of_round.lambda, lam);
        }
    }

    /// The fixed point returned above threshold really is one, and the core
    /// fraction λ grows with c.
    #[test]
    fn fixed_point_properties((k, r) in arb_kr(), gap in 0.05f64..0.4) {
        let cs = c_star(k, r).unwrap();
        let a1 = above_threshold(k, r, cs * (1.0 + gap)).unwrap();
        let a2 = above_threshold(k, r, cs * (1.0 + gap + 0.2)).unwrap();
        // Fixed point equation (Eq. 4.1).
        let rc = r as f64 * cs * (1.0 + gap);
        let g = rc * tail_ge(a1.beta, k - 1).powi(r as i32 - 1);
        prop_assert!((g - a1.beta).abs() < 1e-6);
        // Monotone in c.
        prop_assert!(a2.lambda > a1.lambda);
        prop_assert!(a2.beta > a1.beta);
    }
}

//! Order-m Fibonacci sequences and their growth rates `φ_m`.
//!
//! An order-m Fibonacci sequence has each term equal to the sum of its `m`
//! predecessors; its growth rate `φ_m` is the unique root in `(1, 2)` of
//!
//! ```text
//! x^m = x^{m−1} + x^{m−2} + … + 1
//! ```
//!
//! `φ_2 ≈ 1.618` (golden ratio), `φ_3 ≈ 1.839` (tribonacci),
//! `φ_4 ≈ 1.928`, and `φ_m → 2` as `m → ∞`.
//!
//! Theorem 7 shows subtable peeling drives `β` down Fibonacci-exponentially
//! with order `r − 1`, so `φ_{r−1}` governs the subround complexity:
//! `(1 / log φ_{r−1}) log log n + O(1)` subrounds for `k = 2`.

/// Characteristic polynomial `x^m − x^{m−1} − … − 1` of the order-m
/// Fibonacci recurrence.
fn characteristic(m: u32, x: f64) -> f64 {
    // x^m − (x^m − 1)/(x − 1) for x ≠ 1.
    let xm = x.powi(m as i32);
    xm - (xm - 1.0) / (x - 1.0)
}

/// The growth rate `φ_m` of the order-m Fibonacci sequence.
///
/// # Panics
/// Panics if `m < 2` (order-1 "Fibonacci" is constant and has no rate in
/// `(1,2)`).
pub fn fibonacci_growth_rate(m: u32) -> f64 {
    assert!(m >= 2, "order must be >= 2");
    // Bisection on (1, 2): characteristic(1+) < 0, characteristic(2) = 1 > 0.
    let mut lo = 1.0 + 1e-9;
    let mut hi = 2.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if characteristic(m, mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The first `len` terms of the order-m Fibonacci sequence, starting from
/// `m − 1` ones (the paper's convention in Appendix B).
pub fn fibonacci_sequence(m: u32, len: usize) -> Vec<u128> {
    let m = m as usize;
    let mut seq: Vec<u128> = vec![1; (m - 1).min(len)];
    seq.reserve(len - seq.len());
    while seq.len() < len {
        let start = seq.len().saturating_sub(m);
        let next: u128 = seq[start..].iter().sum();
        seq.push(next);
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_ratio() {
        let phi = fibonacci_growth_rate(2);
        assert!((phi - 1.618_033_988_749_895).abs() < 1e-9, "{phi}");
    }

    #[test]
    fn tribonacci_and_tetranacci() {
        // Appendix B quotes ≈1.61 (r=3 ⇒ φ_2), ≈1.83 (r=4 ⇒ φ_3),
        // ≈1.92 (r=5 ⇒ φ_4).
        assert!((fibonacci_growth_rate(3) - 1.839_286_755_21).abs() < 1e-9);
        assert!((fibonacci_growth_rate(4) - 1.927_561_975_48).abs() < 1e-9);
    }

    #[test]
    fn rates_increase_towards_two() {
        let mut prev = 0.0;
        for m in 2..12 {
            let phi = fibonacci_growth_rate(m);
            assert!(phi > prev && phi < 2.0);
            prev = phi;
        }
        assert!(fibonacci_growth_rate(30) > 1.999_999);
    }

    #[test]
    fn sequence_matches_rate() {
        // Ratio of consecutive large terms approaches φ_m.
        for m in 2..6 {
            let seq = fibonacci_sequence(m, 40);
            let ratio = seq[39] as f64 / seq[38] as f64;
            let phi = fibonacci_growth_rate(m);
            assert!((ratio - phi).abs() < 1e-6, "order {m}: {ratio} vs {phi}");
        }
    }

    #[test]
    fn classic_fibonacci_terms() {
        assert_eq!(fibonacci_sequence(2, 8), vec![1, 1, 2, 3, 5, 8, 13, 21]);
    }

    #[test]
    fn tribonacci_terms() {
        // Paper convention: first m−1 terms are 1.
        assert_eq!(fibonacci_sequence(3, 8), vec![1, 1, 2, 4, 7, 13, 24, 44]);
    }

    #[test]
    #[should_panic]
    fn order_one_rejected() {
        fibonacci_growth_rate(1);
    }
}

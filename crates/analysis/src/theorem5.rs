//! The near-threshold plateau (Theorem 5, Section 7, Appendix C).
//!
//! For `c` just below the threshold, `ν = c*_{k,r} − c` small, the number of
//! peeling rounds is
//!
//! ```text
//! Θ(√(1/ν)) + (1 / log((k−1)(r−1))) · log log n
//! ```
//!
//! The `Θ(√(1/ν))` term is a *plateau*: writing `β_i = x* + δ_i`, the
//! recurrence contracts `δ` by only `δ − c₁δ² − c₂ν` per round near the
//! threshold fixed point `x*`, so crossing the window `|δ| = O(√ν)` costs
//! `Θ(√(1/ν))` rounds (the long flat stretch in Figure 1).
//!
//! This module iterates the exact recurrence to expose the trajectory
//! (Figure 1's series) and the plateau length, plus the `τ` constant used
//! in the proof.

use crate::recurrence::Idealized;
use crate::threshold::threshold;

/// The `β_i` trajectory for Figure 1: iterate the idealized recurrence until
/// `β < floor` or `max_rounds` is hit, returning all intermediate values.
pub fn beta_trajectory(k: u32, r: u32, c: f64, floor: f64, max_rounds: u32) -> Vec<f64> {
    let mut out = Vec::new();
    let mut it = Idealized::new(k, r, c);
    for _ in 0..max_rounds {
        let s = it.step();
        out.push(s.beta);
        if s.beta < floor {
            break;
        }
    }
    out
}

/// A safe choice of the proof's constant `τ`: strictly below both 1 and
/// `(rc* / ((k−1)!)^{r−1})^{−1/((k−1)(r−1)−1)}`, so that once `β_i < τ` the
/// doubly exponential collapse of Theorem 1 takes over.
pub fn default_tau(k: u32, r: u32) -> f64 {
    let t = threshold(k, r).expect("valid (k, r)");
    let km1_fact: f64 = (1..=(k - 1)).map(|i| i as f64).product();
    let rate = ((k - 1) * (r - 1)) as f64;
    let bound = (r as f64 * t.c_star / km1_fact.powi(r as i32 - 1)).powf(-1.0 / (rate - 1.0));
    0.9 * bound.min(1.0).min(t.x_star)
}

/// Number of rounds until `β_i` first drops below `tau` (the plateau length
/// of Lemma 6). `None` if it never does within `max_rounds` (c above
/// threshold).
pub fn rounds_to_tau(k: u32, r: u32, c: f64, tau: f64, max_rounds: u32) -> Option<u32> {
    let mut it = Idealized::new(k, r, c);
    for _ in 0..max_rounds {
        let s = it.step();
        if s.beta < tau {
            return Some(s.i);
        }
    }
    None
}

/// Measure the plateau length for a sweep of gaps `ν` below the threshold.
///
/// Returns `(nu, rounds)` pairs; Lemma 6 predicts `rounds ≈ Θ(√(1/ν))`, so
/// `rounds · √ν` should be roughly constant across the sweep.
pub fn plateau_sweep(k: u32, r: u32, nus: &[f64], max_rounds: u32) -> Vec<(f64, u32)> {
    let t = threshold(k, r).expect("valid (k, r)");
    let tau = default_tau(k, r);
    nus.iter()
        .map(|&nu| {
            let c = t.c_star - nu;
            assert!(c > 0.0, "gap {nu} exceeds threshold {}", t.c_star);
            let rounds =
                rounds_to_tau(k, r, c, tau, max_rounds).expect("below threshold must reach tau");
            (nu, rounds)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_has_plateau_near_threshold() {
        // Figure 1: at c = 0.772 (ν ≈ 0.00028) the β_i sit near x* for a
        // long stretch before collapsing.
        let traj = beta_trajectory(2, 4, 0.772, 1e-6, 10_000);
        let x_star = threshold(2, 4).unwrap().x_star;
        let near: usize = traj.iter().filter(|&&b| (b - x_star).abs() < 0.2).count();
        assert!(
            near > 50,
            "expected a long plateau near x* = {x_star}, got {near} rounds"
        );
    }

    #[test]
    fn further_from_threshold_is_faster() {
        let t77 = beta_trajectory(2, 4, 0.77, 1e-6, 10_000).len();
        let t772 = beta_trajectory(2, 4, 0.772, 1e-6, 10_000).len();
        assert!(
            t772 > t77,
            "c=0.772 ({t772} rounds) should be slower than c=0.77 ({t77})"
        );
        let t70 = beta_trajectory(2, 4, 0.70, 1e-6, 10_000).len();
        assert!(t70 < t77);
    }

    #[test]
    fn plateau_scales_as_inverse_sqrt_nu() {
        // rounds ≈ K/√ν: the product rounds·√ν should be stable within a
        // modest factor across two decades of ν.
        let nus = [1e-2, 1e-3, 1e-4, 1e-5];
        let sweep = plateau_sweep(2, 4, &nus, 1_000_000);
        let products: Vec<f64> = sweep
            .iter()
            .map(|&(nu, rounds)| rounds as f64 * nu.sqrt())
            .collect();
        let max = products.iter().cloned().fold(f64::MIN, f64::max);
        let min = products.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 3.0,
            "rounds·√ν should be near-constant, got {products:?}"
        );
    }

    #[test]
    fn tau_is_sane() {
        for &(k, r) in &[(2u32, 3u32), (2, 4), (3, 3)] {
            let tau = default_tau(k, r);
            assert!(tau > 0.0 && tau < 1.0, "τ({k},{r}) = {tau}");
        }
    }

    #[test]
    fn rounds_to_tau_none_above_threshold() {
        let tau = default_tau(2, 4);
        assert_eq!(rounds_to_tau(2, 4, 0.85, tau, 5_000), None);
    }
}

//! The idealized peeling recurrence (Eqs. 3.1–3.4).
//!
//! In the idealized (Poisson branching tree) model the survival
//! probabilities evolve as
//!
//! ```text
//! ρ_0 = 1
//! β_i = ρ_{i−1}^{r−1} · rc           (mean surviving child edges)
//! ρ_i = P(Poisson(β_i) ≥ k−1)        (non-root vertex survives round i)
//! λ_i = P(Poisson(β_i) ≥ k)          (root vertex survives round i)
//! ```
//!
//! `λ_t · n` predicts the number of unpeeled vertices after `t` rounds of
//! the actual parallel peeling process — the paper's Table 2 shows the match
//! is essentially exact at `n = 10^6`.
//!
//! Below the threshold `β_i → 0` doubly exponentially (rate
//! `(k−1)(r−1)` in the exponent — Theorem 1); above it, `β_i → β > 0`
//! geometrically (Section 4).

use crate::poisson::tail_ge;

/// One step of the idealized recurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealStep {
    /// Round number `i` (1-based, matching the paper's `t` column).
    pub i: u32,
    /// `β_i`: mean number of surviving descendant edges entering round `i`.
    pub beta: f64,
    /// `ρ_i`: survival probability of a non-root vertex after `i` rounds.
    pub rho: f64,
    /// `λ_i`: survival probability of the root after `i` rounds.
    pub lambda: f64,
}

/// Iterator over the idealized recurrence for fixed `(k, r, c)`.
#[derive(Debug, Clone)]
pub struct Idealized {
    k: u32,
    r: u32,
    c: f64,
    i: u32,
    rho: f64,
}

impl Idealized {
    /// Start the recurrence (`ρ_0 = 1`).
    pub fn new(k: u32, r: u32, c: f64) -> Self {
        assert!(k >= 2 && r >= 2, "peeling requires k, r >= 2");
        assert!(c > 0.0 && c.is_finite());
        Idealized {
            k,
            r,
            c,
            i: 0,
            rho: 1.0,
        }
    }

    /// Advance one round and return the new state.
    pub fn step(&mut self) -> IdealStep {
        self.i += 1;
        let beta = self.rho.powi(self.r as i32 - 1) * self.r as f64 * self.c;
        let rho = tail_ge(beta, self.k - 1);
        let lambda = tail_ge(beta, self.k);
        self.rho = rho;
        IdealStep {
            i: self.i,
            beta,
            rho,
            lambda,
        }
    }

    /// The series `λ_1, …, λ_t`.
    pub fn lambda_series(mut self, t: u32) -> Vec<f64> {
        (0..t).map(|_| self.step().lambda).collect()
    }

    /// The series `β_1, …, β_t` (the quantity plotted in Figure 1).
    pub fn beta_series(mut self, t: u32) -> Vec<f64> {
        (0..t).map(|_| self.step().beta).collect()
    }

    /// Predicted unpeeled-vertex counts `λ_i · n` for `i = 1..=t`
    /// (the "Prediction" column of Table 2).
    pub fn survivor_predictions(self, n: u64, t: u32) -> Vec<f64> {
        self.lambda_series(t)
            .into_iter()
            .map(|l| l * n as f64)
            .collect()
    }

    /// Number of rounds until the predicted survivor count `λ_t · n` drops
    /// below `0.5` (i.e. the idealized model says the graph is empty), capped
    /// at `max_rounds`. Returns `None` if the cap is hit (e.g. above the
    /// threshold, where `λ_t → λ > 0`).
    pub fn rounds_to_empty(mut self, n: u64, max_rounds: u32) -> Option<u32> {
        for _ in 0..max_rounds {
            let s = self.step();
            if s.lambda * n as f64 <= 0.5 {
                return Some(s.i);
            }
        }
        None
    }
}

impl Iterator for Idealized {
    type Item = IdealStep;

    fn next(&mut self) -> Option<IdealStep> {
        Some(self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2 of the paper, c = 0.7 (r=4, k=2, n = 10^6): predictions.
    const TABLE2_C07: [f64; 12] = [
        768_922.0, 673_647.0, 608_076.0, 553_064.0, 500_466.0, 444_828.0, 380_873.0, 302_531.0,
        204_442.0, 93_245.0, 14_159.0, 74.0,
    ];

    /// Table 2 of the paper, c = 0.85: predictions.
    const TABLE2_C085: [f64; 20] = [
        853_158.0, 811_184.0, 793_026.0, 784_269.0, 779_841.0, 777_550.0, 776_350.0, 775_719.0,
        775_385.0, 775_209.0, 775_115.0, 775_066.0, 775_039.0, 775_025.0, 775_018.0, 775_014.0,
        775_012.0, 775_011.0, 775_010.0, 775_010.0,
    ];

    #[test]
    fn reproduces_table2_below_threshold() {
        let preds = Idealized::new(2, 4, 0.7).survivor_predictions(1_000_000, 12);
        for (i, (&paper, got)) in TABLE2_C07.iter().zip(preds).enumerate() {
            // The paper prints rounded integers; allow 1 count of rounding
            // slack plus tiny relative error.
            let tol = 1.0 + paper * 1e-5;
            assert!(
                (got - paper).abs() <= tol,
                "round {}: prediction {} vs paper {}",
                i + 1,
                got,
                paper
            );
        }
    }

    #[test]
    fn reproduces_table2_above_threshold() {
        let preds = Idealized::new(2, 4, 0.85).survivor_predictions(1_000_000, 20);
        for (i, (&paper, got)) in TABLE2_C085.iter().zip(preds).enumerate() {
            let tol = 1.0 + paper * 1e-5;
            assert!(
                (got - paper).abs() <= tol,
                "round {}: prediction {} vs paper {}",
                i + 1,
                got,
                paper
            );
        }
    }

    #[test]
    fn below_threshold_lambda_vanishes() {
        let lam = Idealized::new(2, 4, 0.7).lambda_series(20);
        assert!(lam[19] < 1e-12, "λ_20 = {} should be ~0", lam[19]);
    }

    #[test]
    fn rounds_to_empty_matches_table2() {
        // Table 2 shows the process finishing in 13 rounds at n = 10^6
        // (prediction 0.00001·10 at t=13 ⇒ below half a vertex).
        let rounds = Idealized::new(2, 4, 0.7)
            .rounds_to_empty(1_000_000, 100)
            .unwrap();
        assert_eq!(rounds, 13);
    }

    #[test]
    fn above_threshold_never_empties() {
        assert_eq!(
            Idealized::new(2, 4, 0.85).rounds_to_empty(1_000_000, 500),
            None
        );
    }

    #[test]
    fn beta_monotone_below_threshold() {
        let betas = Idealized::new(2, 4, 0.7).beta_series(15);
        for w in betas.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "β must be non-increasing: {w:?}");
        }
    }

    #[test]
    fn iterator_interface_agrees_with_series() {
        let a: Vec<f64> = Idealized::new(3, 3, 1.2)
            .take(8)
            .map(|s| s.lambda)
            .collect();
        let b = Idealized::new(3, 3, 1.2).lambda_series(8);
        assert_eq!(a, b);
    }

    #[test]
    fn doubly_exponential_decay_rate() {
        // Below threshold, log log(1/β_i) grows ~ i·log((k−1)(r−1)).
        // Check the ratio log(1/β_{i+1}) / log(1/β_i) approaches (k−1)(r−1).
        let k = 2u32;
        let r = 4u32;
        let betas = Idealized::new(k, r, 0.5).beta_series(12);
        let target = ((k - 1) * (r - 1)) as f64;
        // Use late rounds where the asymptotics have kicked in but floats
        // have not yet underflowed.
        let mut checked = 0;
        for w in betas.windows(2) {
            if w[0] < 1e-3 && w[1] > 1e-200 {
                let ratio = w[1].ln() / w[0].ln();
                assert!(
                    (ratio - target).abs() < 0.35,
                    "decay exponent ratio {ratio} should approach {target}"
                );
                checked += 1;
            }
        }
        assert!(checked >= 2, "need at least two asymptotic rounds");
    }
}

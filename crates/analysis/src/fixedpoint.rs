//! Above-threshold behaviour (Section 4).
//!
//! For `c > c*_{k,r}` the recurrence `β_{i+1} = g(β_i)` with
//! `g(x) = rc · P(Poisson(x) ≥ k−1)^{r−1}` converges to a *positive* fixed
//! point `β` (Eq. 4.1), the limiting core fraction is
//! `λ = P(Poisson(β) ≥ k)`, and the approach is geometric with contraction
//! rate
//!
//! ```text
//! f'(0) = (r−1) · β · e^{−β} · β^{k−2} / ( (k−2)! · P(Poisson(β) ≥ k−1) )
//! ```
//!
//! (Eq. 4.3). The paper's key observation: `0 < f'(0) < 1` strictly above
//! the threshold, which forces `Ω(log n)` peeling rounds (Theorem 3),
//! whereas below the threshold `β = 0` gives `f'(0) = 0` and the doubly
//! exponential collapse of Theorem 1.

use crate::poisson::tail_ge;

/// Above-threshold limiting quantities for a `(k, r, c)` triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AboveThreshold {
    /// The positive fixed point `β` of Eq. (4.1).
    pub beta: f64,
    /// Limiting vertex-survival probability `λ` — the k-core occupies
    /// `λ·n + o(n)` vertices.
    pub lambda: f64,
    /// Limiting non-root survival probability `ρ`.
    pub rho: f64,
    /// The contraction rate `f'(0)` of Eq. (4.3); in `(0, 1)` strictly above
    /// the threshold.
    pub contraction: f64,
    /// Number of recurrence iterations used to reach the fixed point.
    pub iterations: u32,
}

/// Iterate the β recurrence to its fixed point.
///
/// Returns `None` if the fixed point is (numerically) zero — i.e. the edge
/// density is at or below the threshold, where no positive core exists.
pub fn above_threshold(k: u32, r: u32, c: f64) -> Option<AboveThreshold> {
    assert!(k >= 2 && r >= 2);
    assert!(c > 0.0 && c.is_finite());
    let rc = r as f64 * c;
    let mut beta = rc; // β_1 = rc (ρ_0 = 1)
    let mut iterations = 0u32;
    loop {
        let next = rc * tail_ge(beta, k - 1).powi(r as i32 - 1);
        iterations += 1;
        let delta = (next - beta).abs();
        beta = next;
        if delta < 1e-14 {
            break;
        }
        if beta < 1e-12 {
            return None; // collapsed to zero: below threshold
        }
        if iterations > 1_000_000 {
            break; // pathological slow convergence right at threshold
        }
    }
    if beta < 1e-9 {
        return None;
    }
    let rho = tail_ge(beta, k - 1);
    let lambda = tail_ge(beta, k);
    // f'(0) per Eq. (4.3): (r−1)·β·e^{−β}·β^{k−2} / ((k−2)!·ρ).
    let km2_fact: f64 = (1..=(k.saturating_sub(2))).map(|i| i as f64).product();
    let contraction =
        (r as f64 - 1.0) * beta * (-beta).exp() * beta.powi(k as i32 - 2) / (km2_fact * rho);
    Some(AboveThreshold {
        beta,
        lambda,
        rho,
        contraction,
        iterations,
    })
}

/// Predicted k-core size `λ·n` for `c > c*_{k,r}` (0 below threshold).
pub fn core_size_prediction(k: u32, r: u32, c: f64, n: u64) -> f64 {
    match above_threshold(k, r, c) {
        Some(a) => a.lambda * n as f64,
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::c_star;

    #[test]
    fn table2_limit_value() {
        // Table 2, c=0.85 column converges to 775,010 survivors at n=10^6;
        // that limit is λ·n.
        let a = above_threshold(2, 4, 0.85).expect("above threshold");
        let predicted = a.lambda * 1_000_000.0;
        assert!(
            (predicted - 775_010.0).abs() < 2.0,
            "core prediction {predicted}"
        );
    }

    #[test]
    fn below_threshold_returns_none() {
        assert!(above_threshold(2, 4, 0.7).is_none());
        assert!(above_threshold(2, 3, 0.5).is_none());
        assert!(above_threshold(3, 3, 1.0).is_none());
    }

    #[test]
    fn contraction_in_unit_interval_above_threshold() {
        for &(k, r, margin) in &[(2u32, 4u32, 0.05), (2, 3, 0.05), (3, 3, 0.08)] {
            let c = c_star(k, r).unwrap() + margin;
            let a = above_threshold(k, r, c).unwrap();
            assert!(
                a.contraction > 0.0 && a.contraction < 1.0,
                "({k},{r}) c={c}: f'(0) = {}",
                a.contraction
            );
        }
    }

    #[test]
    fn contraction_matches_numeric_derivative() {
        // f'(0) should equal dg/dβ at the fixed point.
        let k = 2u32;
        let r = 4u32;
        let c = 0.85;
        let a = above_threshold(k, r, c).unwrap();
        let rc = r as f64 * c;
        let g = |x: f64| rc * tail_ge(x, k - 1).powi(r as i32 - 1);
        let h = 1e-6;
        let numeric = (g(a.beta + h) - g(a.beta - h)) / (2.0 * h);
        assert!(
            (numeric - a.contraction).abs() < 1e-6,
            "analytic {} vs numeric {}",
            a.contraction,
            numeric
        );
    }

    #[test]
    fn fixed_point_satisfies_eq41() {
        let a = above_threshold(3, 3, 1.8).unwrap();
        let rc = 3.0 * 1.8;
        let g = rc * tail_ge(a.beta, 2).powi(2);
        assert!((g - a.beta).abs() < 1e-9);
    }

    #[test]
    fn core_grows_with_density() {
        let s1 = core_size_prediction(2, 4, 0.80, 1_000_000);
        let s2 = core_size_prediction(2, 4, 0.85, 1_000_000);
        let s3 = core_size_prediction(2, 4, 0.95, 1_000_000);
        assert!(s1 > 0.0 && s1 < s2 && s2 < s3);
        assert_eq!(core_size_prediction(2, 4, 0.5, 1_000_000), 0.0);
    }

    #[test]
    fn contraction_shrinks_near_threshold() {
        // Just above the threshold convergence is slowest: f'(0) → 1 as
        // c ↓ c*. Verify monotone trend.
        let cs = c_star(2, 4).unwrap();
        let near = above_threshold(2, 4, cs + 0.002).unwrap();
        let far = above_threshold(2, 4, cs + 0.2).unwrap();
        assert!(
            near.contraction > far.contraction,
            "near {} vs far {}",
            near.contraction,
            far.contraction
        );
        assert!(near.contraction > 0.9, "near-threshold f'(0) ≈ 1");
    }
}

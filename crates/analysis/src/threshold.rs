//! The k-core emergence threshold `c*_{k,r}` of Eq. (2.1).
//!
//! From Molloy's analysis, peeling an r-uniform hypergraph with edge density
//! `c` to the empty k-core succeeds w.h.p. iff `c < c*_{k,r}`, where
//!
//! ```text
//! c*_{k,r} = min_{x>0}  x / ( r · P(Poisson(x) ≥ k−1)^{r−1} )
//! ```
//!
//! The minimizer `x*` is the fixed point of the survival recurrence exactly
//! at threshold ("the expected number of surviving descendant edges of each
//! node when c = c*", Appendix C) and drives the Theorem 5 analysis.
//!
//! The objective diverges at both ends of `(0, ∞)` (as `x^{1-(k-1)(r-1)}`
//! near 0 when `(k−1)(r−1) > 1`, and as `x/r` at ∞) and is smooth in
//! between, so we locate a bracket by coarse geometric scan and refine by
//! golden-section search.

use crate::poisson::tail_ge;

/// Result of a threshold computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Threshold {
    /// The threshold edge density `c*_{k,r}`.
    pub c_star: f64,
    /// The minimizing `x*` (threshold fixed point of the β recurrence).
    pub x_star: f64,
}

/// The objective `F(x) = x / (r · P(Poisson(x) ≥ k−1)^{r−1})` from Eq. (2.1).
pub fn objective(k: u32, r: u32, x: f64) -> f64 {
    let p = tail_ge(x, k - 1);
    if p <= 0.0 {
        return f64::INFINITY;
    }
    x / (r as f64 * p.powi(r as i32 - 1))
}

/// Compute the threshold `c*_{k,r}` together with its minimizer `x*`.
///
/// Requires `k, r ≥ 2` and `k + r ≥ 5` (the paper excludes the degenerate
/// `k = r = 2` case, where the k-core threshold behaves differently).
pub fn threshold(k: u32, r: u32) -> Result<Threshold, ThresholdError> {
    if k < 2 || r < 2 {
        return Err(ThresholdError::ParamTooSmall { k, r });
    }
    if k + r < 5 {
        return Err(ThresholdError::DegenerateCase);
    }

    // Coarse geometric scan for a bracket around the minimum.
    let mut best_x = f64::NAN;
    let mut best_f = f64::INFINITY;
    let mut x = 1e-3;
    while x < 200.0 {
        let f = objective(k, r, x);
        if f < best_f {
            best_f = f;
            best_x = x;
        }
        x *= 1.05;
    }
    let lo = best_x / 1.05 / 1.05;
    let hi = best_x * 1.05 * 1.05;

    // Golden-section refinement.
    let (x_star, c_star) = golden_section(|x| objective(k, r, x), lo, hi, 1e-12);
    Ok(Threshold { c_star, x_star })
}

/// Convenience: just the threshold density `c*_{k,r}`.
pub fn c_star(k: u32, r: u32) -> Result<f64, ThresholdError> {
    threshold(k, r).map(|t| t.c_star)
}

/// Convenience: just the minimizer `x*`.
pub fn x_star(k: u32, r: u32) -> Result<f64, ThresholdError> {
    threshold(k, r).map(|t| t.x_star)
}

/// Errors from threshold computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdError {
    /// `k` or `r` below 2.
    ParamTooSmall {
        /// The `k` requested.
        k: u32,
        /// The `r` requested.
        r: u32,
    },
    /// The excluded `k = r = 2` case.
    DegenerateCase,
}

impl std::fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThresholdError::ParamTooSmall { k, r } => {
                write!(f, "k and r must both be >= 2 (got k={k}, r={r})")
            }
            ThresholdError::DegenerateCase => {
                write!(f, "the case k = r = 2 is excluded (k + r must be >= 5)")
            }
        }
    }
}

impl std::error::Error for ThresholdError {}

/// Minimize a unimodal function on `[lo, hi]` by golden-section search.
/// Returns `(argmin, min)`.
fn golden_section<F: Fn(f64) -> f64>(f: F, mut lo: f64, mut hi: f64, tol: f64) -> (f64, f64) {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    while hi - lo > tol {
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = f(x2);
        }
    }
    let xm = 0.5 * (lo + hi);
    (xm, f(xm))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_thresholds() {
        // Section 2: c*_{2,3} ≈ 0.818, c*_{2,4} ≈ 0.772, c*_{3,3} ≈ 1.553.
        assert!((c_star(2, 3).unwrap() - 0.818).abs() < 1.5e-3);
        assert!((c_star(2, 4).unwrap() - 0.772).abs() < 1.5e-3);
        assert!((c_star(3, 3).unwrap() - 1.553).abs() < 1.5e-3);
    }

    #[test]
    fn known_precise_values() {
        // Higher-precision literature values for the 2-core thresholds
        // (cuckoo-hashing / XORSAT thresholds).
        assert!((c_star(2, 3).unwrap() - 0.818469).abs() < 1e-5);
        assert!((c_star(2, 4).unwrap() - 0.772280).abs() < 1e-5);
        assert!((c_star(2, 5).unwrap() - 0.701780).abs() < 1e-4);
    }

    #[test]
    fn figure1_threshold_value() {
        // Section 7 quotes c*_{2,4} ≈ 0.77228.
        let t = threshold(2, 4).unwrap();
        assert!((t.c_star - 0.77228).abs() < 5e-6, "c* = {}", t.c_star);
    }

    #[test]
    fn x_star_is_a_critical_point() {
        // At x*, the derivative of the objective vanishes: check numerically.
        for &(k, r) in &[(2u32, 3u32), (2, 4), (3, 3), (3, 4), (4, 3)] {
            let t = threshold(k, r).unwrap();
            let h = 1e-5;
            let d = (objective(k, r, t.x_star + h) - objective(k, r, t.x_star - h)) / (2.0 * h);
            assert!(d.abs() < 1e-3, "dF/dx at x* for ({k},{r}) is {d}");
        }
    }

    #[test]
    fn x_star_exceeds_k_minus_one() {
        // Appendix C proves x* >= k − 1 (used to show f''(0) < 0).
        for &(k, r) in &[(2u32, 3u32), (2, 4), (3, 3), (4, 4), (5, 3)] {
            let t = threshold(k, r).unwrap();
            assert!(
                t.x_star > (k - 1) as f64,
                "x*({k},{r}) = {} should exceed {}",
                t.x_star,
                k - 1
            );
        }
    }

    #[test]
    fn rejects_degenerate_and_tiny_params() {
        assert_eq!(threshold(2, 2).unwrap_err(), ThresholdError::DegenerateCase);
        assert!(matches!(
            threshold(1, 3).unwrap_err(),
            ThresholdError::ParamTooSmall { .. }
        ));
        assert!(matches!(
            threshold(3, 1).unwrap_err(),
            ThresholdError::ParamTooSmall { .. }
        ));
    }

    #[test]
    fn thresholds_decrease_in_r_for_k2() {
        // More hash functions => lower 2-core threshold (for r >= 3).
        let c3 = c_star(2, 3).unwrap();
        let c4 = c_star(2, 4).unwrap();
        let c5 = c_star(2, 5).unwrap();
        assert!(c3 > c4 && c4 > c5);
    }

    #[test]
    fn thresholds_increase_in_k() {
        // Larger k => denser cores tolerated before emergence.
        let a = c_star(2, 3).unwrap();
        let b = c_star(3, 3).unwrap();
        let c = c_star(4, 3).unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn objective_diverges_at_extremes() {
        assert!(objective(2, 4, 1e-9) > 1e6);
        assert!(objective(2, 4, 1e4) > 1e3);
    }
}

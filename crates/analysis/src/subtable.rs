//! The subtable peeling recurrence (Appendix B, Eq. B.1).
//!
//! When vertices are split into `r` subtables and subround `j` of round `i`
//! peels only subtable `j`, the survival probabilities become table-indexed:
//!
//! ```text
//! ρ_{0,j} = 1                              for all j
//! β_{i,j} = rc · Π_{h<j} ρ_{i,h} · Π_{h>j} ρ_{i−1,h}
//! ρ_{i,j} = P(Poisson(β_{i,j}) ≥ k−1)
//! λ_{i,j} = P(Poisson(β_{i,j}) ≥ k)
//! ```
//!
//! Subtables peeled earlier within the same round already reflect round-`i`
//! survival; later ones still carry round-`i−1` values — exactly like
//! Vöcking's asymmetric d-left load balancing, which is why the decay is
//! *Fibonacci*-exponential (Theorem 7).
//!
//! The fraction of **all** vertices unpeeled right after subround `(i, j)` is
//!
//! ```text
//! λ'_{i,j} = (1/r) ( Σ_{h≤j} λ_{i,h} + Σ_{h>j} λ_{i−1,h} )
//! ```
//!
//! which is the "Prediction" column of Table 6.

use crate::poisson::tail_ge;

/// One subround of the subtable recurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubtableStep {
    /// Round `i` (1-based).
    pub round: u32,
    /// Subtable `j` (1-based, `1..=r`, matching the paper's indices).
    pub subtable: u32,
    /// `β_{i,j}`.
    pub beta: f64,
    /// `ρ_{i,j}`.
    pub rho: f64,
    /// `λ_{i,j}` — survival probability of a root vertex *in subtable j*.
    pub lambda: f64,
    /// `λ'_{i,j}` — predicted fraction of all vertices unpeeled after this
    /// subround (Table 6's prediction column is `λ'_{i,j} · n`).
    pub lambda_prime: f64,
}

/// Iterator over the subtable recurrence for fixed `(k, r, c)`.
#[derive(Debug, Clone)]
pub struct SubtableRecurrence {
    k: u32,
    r: u32,
    c: f64,
    round: u32,
    subtable: u32,
    /// Latest ρ value per subtable (round i for tables already stepped this
    /// round, round i−1 for the rest).
    rho: Vec<f64>,
    /// Latest λ value per subtable, same convention.
    lambda: Vec<f64>,
}

impl SubtableRecurrence {
    /// Start the recurrence (`ρ_{0,j} = λ_{0,j} = 1`).
    pub fn new(k: u32, r: u32, c: f64) -> Self {
        assert!(k >= 2 && r >= 2);
        assert!(c > 0.0 && c.is_finite());
        SubtableRecurrence {
            k,
            r,
            c,
            round: 1,
            subtable: 1,
            rho: vec![1.0; r as usize],
            lambda: vec![1.0; r as usize],
        }
    }

    /// Advance one subround and return the new state.
    pub fn step(&mut self) -> SubtableStep {
        let j = self.subtable as usize - 1;
        // β_{i,j} = rc · product of latest ρ over the *other* subtables.
        // Tables h < j already hold round-i values; tables h > j hold
        // round-(i−1) values; both are exactly `self.rho[h]`.
        let mut prod = 1.0;
        for (h, &rho) in self.rho.iter().enumerate() {
            if h != j {
                prod *= rho;
            }
        }
        let beta = self.r as f64 * self.c * prod;
        let rho = tail_ge(beta, self.k - 1);
        let lambda = tail_ge(beta, self.k);
        self.rho[j] = rho;
        self.lambda[j] = lambda;
        let lambda_prime = self.lambda.iter().sum::<f64>() / self.r as f64;

        let step = SubtableStep {
            round: self.round,
            subtable: self.subtable,
            beta,
            rho,
            lambda,
            lambda_prime,
        };
        if self.subtable == self.r {
            self.subtable = 1;
            self.round += 1;
        } else {
            self.subtable += 1;
        }
        step
    }

    /// All subround steps for rounds `1..=rounds`.
    pub fn steps(mut self, rounds: u32) -> Vec<SubtableStep> {
        (0..rounds * self.r).map(|_| self.step()).collect()
    }

    /// Predicted unpeeled-vertex counts `λ'_{i,j} · n` for the first
    /// `rounds` rounds (Table 6's prediction column, row-major in `(i, j)`).
    pub fn survivor_predictions(self, n: u64, rounds: u32) -> Vec<f64> {
        self.steps(rounds)
            .into_iter()
            .map(|s| s.lambda_prime * n as f64)
            .collect()
    }

    /// Number of *subrounds* until the predicted survivor count drops below
    /// `0.5`, capped at `max_subrounds`.
    pub fn subrounds_to_empty(mut self, n: u64, max_subrounds: u32) -> Option<u32> {
        for s in 0..max_subrounds {
            let st = self.step();
            if st.lambda_prime * n as f64 <= 0.5 {
                return Some(s + 1);
            }
        }
        None
    }
}

impl Iterator for SubtableRecurrence {
    type Item = SubtableStep;

    fn next(&mut self) -> Option<SubtableStep> {
        Some(self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 6 predictions for c=0.7, r=4, k=2, n=10^6 (rounds 1..=7).
    const TABLE6: [(u32, u32, f64); 28] = [
        (1, 1, 942_230.0),
        (1, 2, 876_807.0),
        (1, 3, 801_855.0),
        (1, 4, 714_875.0),
        (2, 1, 678_767.0),
        (2, 2, 643_070.0),
        (2, 3, 609_686.0),
        (2, 4, 581_912.0),
        (3, 1, 554_402.0),
        (3, 2, 527_335.0),
        (3, 3, 500_469.0),
        (3, 4, 472_470.0),
        (4, 1, 442_874.0),
        (4, 2, 410_958.0),
        (4, 3, 375_770.0),
        (4, 4, 336_458.0),
        (5, 1, 292_159.0),
        (5, 2, 242_396.0),
        (5, 3, 187_891.0),
        (5, 4, 131_789.0),
        (6, 1, 80_372.0),
        (6, 2, 40_582.0),
        (6, 3, 15_481.0),
        (6, 4, 3_649.0),
        (7, 1, 348.0),
        (7, 2, 6.0),
        (7, 3, 0.003),
        (7, 4, 0.0),
    ];

    #[test]
    fn reproduces_table6_predictions() {
        let steps = SubtableRecurrence::new(2, 4, 0.7).steps(7);
        assert_eq!(steps.len(), 28);
        for (s, &(i, j, paper)) in steps.iter().zip(TABLE6.iter()) {
            assert_eq!((s.round, s.subtable), (i, j));
            let got = s.lambda_prime * 1_000_000.0;
            let tol = if paper >= 1.0 {
                1.0 + paper * 1e-5
            } else {
                0.01
            };
            assert!(
                (got - paper).abs() <= tol,
                "({i},{j}): prediction {got} vs paper {paper}"
            );
        }
    }

    #[test]
    fn first_subround_matches_plain_lambda1() {
        // β_{1,1} = rc, so λ_{1,1} equals the plain λ_1.
        let mut st = SubtableRecurrence::new(2, 4, 0.7);
        let s = st.step();
        assert!((s.beta - 2.8).abs() < 1e-12);
        assert!((s.lambda - 0.768922).abs() < 5e-7);
        // λ'_{1,1} = (λ_{1,1} + 3) / 4 (other tables still at λ_0 = 1).
        assert!((s.lambda_prime - (s.lambda + 3.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn subrounds_to_empty_matches_table6() {
        // Table 6: survivors hit 0 at subround (7,4) = subround 28; the last
        // *fractional* survivor count below 0.5 first occurs at (7,3) = 27.
        let sr = SubtableRecurrence::new(2, 4, 0.7)
            .subrounds_to_empty(1_000_000, 100)
            .unwrap();
        assert_eq!(sr, 27);
    }

    #[test]
    fn above_threshold_never_empties() {
        assert_eq!(
            SubtableRecurrence::new(2, 4, 0.85).subrounds_to_empty(1_000_000, 400),
            None
        );
    }

    #[test]
    fn lambda_prime_is_decreasing() {
        let steps = SubtableRecurrence::new(2, 4, 0.7).steps(7);
        for w in steps.windows(2) {
            assert!(w[1].lambda_prime <= w[0].lambda_prime + 1e-12);
        }
    }

    #[test]
    fn subtable_beats_plain_per_round() {
        // One subtable round peels at least as much as one plain round:
        // λ_{i,r} (last subtable) ≤ plain λ_i for every i.
        use crate::recurrence::Idealized;
        let plain = Idealized::new(2, 4, 0.7).lambda_series(7);
        let steps = SubtableRecurrence::new(2, 4, 0.7).steps(7);
        for (i, lam_plain) in plain.iter().enumerate() {
            let last = &steps[i * 4 + 3];
            assert!(
                last.lambda <= lam_plain + 1e-12,
                "round {}: subtable λ {} should be ≤ plain λ {}",
                i + 1,
                last.lambda,
                lam_plain
            );
        }
    }
}

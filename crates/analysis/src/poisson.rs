//! Poisson distribution functions.
//!
//! All peeling-theory quantities reduce to Poisson tail probabilities with
//! small integer thresholds (`k ≤ ~10`) and moderate means (`μ = rc ≲ 20`),
//! so simple ascending-term summation is both fast and accurate: terms are
//! positive, the sum is dominated by its largest term, and no cancellation
//! occurs.

/// Poisson probability mass function `P(X = j)` for `X ~ Poisson(mu)`.
pub fn pmf(mu: f64, j: u32) -> f64 {
    assert!(mu >= 0.0);
    if mu == 0.0 {
        return if j == 0 { 1.0 } else { 0.0 };
    }
    let mut term = (-mu).exp();
    for i in 0..j {
        term *= mu / (i as f64 + 1.0);
    }
    term
}

/// `P(X <= j)` for `X ~ Poisson(mu)`.
pub fn cdf(mu: f64, j: u32) -> f64 {
    assert!(mu >= 0.0);
    if mu == 0.0 {
        return 1.0;
    }
    let mut term = (-mu).exp();
    let mut acc = term;
    for i in 0..j {
        term *= mu / (i as f64 + 1.0);
        acc += term;
    }
    acc.min(1.0)
}

/// The tail `P(X >= k)` for `X ~ Poisson(mu)`.
///
/// This is the expression `1 − e^{−μ} Σ_{j=0}^{k−1} μ^j/j!` that appears
/// throughout the paper (with `k−1` in the vertex-survival recurrence and
/// `k` in the root-survival recurrence).
pub fn tail_ge(mu: f64, k: u32) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let c = cdf(mu, k - 1);
    (1.0 - c).max(0.0)
}

/// The truncated exponential sum `S(a, x) = Σ_{j=0}^{a} x^j / j!` used in
/// Eq. (2.1) and Appendix C. `S(-1, x)` is taken to be 0 (paper convention),
/// encoded here by calling with `a = None`.
pub fn exp_sum(a: Option<u32>, x: f64) -> f64 {
    let Some(a) = a else { return 0.0 };
    let mut term = 1.0;
    let mut acc = 1.0;
    for j in 0..a {
        term *= x / (j as f64 + 1.0);
        acc += term;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let mu = 2.8;
        let total: f64 = (0..60).map(|j| pmf(mu, j)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_zero_mean() {
        assert_eq!(pmf(0.0, 0), 1.0);
        assert_eq!(pmf(0.0, 3), 0.0);
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let mu = 5.0;
        let mut prev = 0.0;
        for j in 0..30 {
            let c = cdf(mu, j);
            assert!(c >= prev && c <= 1.0);
            prev = c;
        }
        assert!((cdf(mu, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_matches_paper_lambda1() {
        // λ_1 for k=2, r=4, c=0.7 is P(Poisson(2.8) >= 2) = 0.768922 (Table 2).
        let lam = tail_ge(2.8, 2);
        assert!((lam - 0.768922).abs() < 5e-7, "got {lam}");
    }

    #[test]
    fn tail_edge_cases() {
        assert_eq!(tail_ge(1.0, 0), 1.0);
        assert_eq!(tail_ge(0.0, 1), 0.0);
        assert!((tail_ge(1.0, 1) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn tail_plus_cdf_is_one() {
        for k in 1..8u32 {
            for &mu in &[0.3, 1.0, 2.8, 7.5] {
                assert!((tail_ge(mu, k) + cdf(mu, k - 1) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn exp_sum_basics() {
        assert_eq!(exp_sum(None, 3.0), 0.0);
        assert_eq!(exp_sum(Some(0), 3.0), 1.0);
        assert!((exp_sum(Some(2), 2.0) - (1.0 + 2.0 + 2.0)).abs() < 1e-12);
        // e^{-x} S(k, x) = cdf(x, k)
        for k in 0..6u32 {
            let x: f64 = 1.7;
            assert!(((-x).exp() * exp_sum(Some(k), x) - cdf(x, k)).abs() < 1e-12);
        }
    }
}

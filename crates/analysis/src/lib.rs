//! # peel-analysis — the theory of parallel peeling, executable
//!
//! This crate implements every analytic object from *Parallel Peeling
//! Algorithms* (Jiang, Mitzenmacher, Thaler; SPAA 2014) so that the
//! experiment harness can print paper-style "prediction vs experiment"
//! tables and so library users can size their data structures:
//!
//! * [`poisson`] — Poisson pmf/cdf/tail probabilities (stable for the small
//!   means that arise in peeling, `μ = rc ≲ 20`).
//! * [`threshold`] — the edge-density threshold `c*_{k,r}` of Eq. (2.1),
//!   `c*_{k,r} = min_{x>0} x / (r · P(Poisson(x) ≥ k−1)^{r−1})`, computed by
//!   bracketed golden-section minimization; also the argmin `x*` used by the
//!   Theorem 5 analysis.
//! * [`recurrence`] — the idealized branching-process recurrence
//!   (Eqs. 3.2–3.4): `β_i = ρ_{i−1}^{r−1}·rc`, `ρ_i = P(Poi(β_i) ≥ k−1)`,
//!   `λ_i = P(Poi(β_i) ≥ k)`. `λ_t · n` is the paper's per-round survivor
//!   prediction (Table 2).
//! * [`subtable`] — the subtable variant (Eq. B.1) and the reported
//!   `λ'_{i,j}` prediction (Table 6).
//! * [`fibonacci`] — order-m Fibonacci growth rates `φ_m` (Theorems 4/7).
//! * [`rounds`] — closed-form round-complexity predictions: Theorem 1's
//!   `log log n / log((k−1)(r−1))`, Theorem 7's subround count, Gao's
//!   alternative constant, and the subround inflation factor discussed in
//!   Appendix B.
//! * [`fixedpoint`] — above-threshold behaviour (Section 4): the fixed point
//!   `β`, the limiting core fraction `λ`, and the contraction rate `f'(0)`
//!   of Eq. (4.3) that drives the `Ω(log n)` lower bound.
//! * [`theorem5`] — the near-threshold `Θ(√(1/ν))` plateau (Section 7 /
//!   Appendix C) and the `β_i` trajectories plotted in Figure 1.
//!
//! The crate is dependency-free so every other crate can cheaply depend on
//! it.
//!
//! ## Quick example
//!
//! ```
//! use peel_analysis::{c_star, Idealized, predicted_rounds_below};
//!
//! // The thresholds quoted in Section 2 of the paper:
//! assert!((c_star(2, 3).unwrap() - 0.818).abs() < 1e-3);
//! assert!((c_star(2, 4).unwrap() - 0.772).abs() < 1e-3);
//! assert!((c_star(3, 3).unwrap() - 1.553).abs() < 1e-3);
//!
//! // Table 2, first row: with k=2, r=4, c=0.7 and n=1M, the predicted
//! // number of unpeeled vertices after one round is 768,922.
//! let lambda1 = Idealized::new(2, 4, 0.7).lambda_series(1)[0];
//! assert_eq!((lambda1 * 1_000_000.0).round() as u64, 768_922);
//!
//! // Theorem 1's leading-order round prediction grows doubly-log in n.
//! let t = predicted_rounds_below(2, 4, 1_000_000.0);
//! assert!(t > 2.0 && t < 4.0);
//! ```

#![warn(missing_docs)]

pub mod fibonacci;
pub mod fixedpoint;
pub mod poisson;
pub mod recurrence;
pub mod rounds;
pub mod subtable;
pub mod theorem5;
pub mod threshold;

pub use fibonacci::fibonacci_growth_rate;
pub use fixedpoint::AboveThreshold;
pub use recurrence::{IdealStep, Idealized};
pub use rounds::{predicted_rounds_below, predicted_subrounds_below, subround_inflation};
pub use subtable::SubtableRecurrence;
pub use threshold::{c_star, x_star, Threshold};

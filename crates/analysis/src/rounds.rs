//! Closed-form round-complexity predictions.
//!
//! * Theorem 1: below the threshold, parallel peeling finishes in
//!   `(1 / log((k−1)(r−1))) · log log n + O(1)` rounds.
//! * Theorem 7: subtable peeling finishes in
//!   `(1 / (r·log φ_{r−1} + log(k−1))) · log log n + O(1)` *rounds* of `r`
//!   subrounds each.
//! * Gao's simpler proof gives the larger constant `1 / log(k(r−1)/r)`.
//! * Theorem 3: above the threshold, `Ω(log n)` rounds are required; the
//!   per-round contraction factor is `f'(0)` of Eq. (4.3) (see
//!   [`crate::fixedpoint`]).
//!
//! These are leading-order terms — the `O(1)` additive constants depend on
//! the gap to the threshold (see [`crate::theorem5`]) — so they are meant
//! for growth-rate comparisons, not exact counts.

use crate::fibonacci::fibonacci_growth_rate;

/// `log log n / log((k−1)(r−1))` — Theorem 1's leading term.
///
/// # Panics
/// Panics for parameters where the rate `(k−1)(r−1) ≤ 1` (i.e. `k = r = 2`,
/// which the paper excludes) or `n ≤ e`.
pub fn predicted_rounds_below(k: u32, r: u32, n: f64) -> f64 {
    assert!(k >= 2 && r >= 2 && k + r >= 5);
    assert!(n > std::f64::consts::E, "need log log n > 0");
    let rate = ((k - 1) * (r - 1)) as f64;
    n.ln().ln() / rate.ln()
}

/// Gao's alternative (weaker) constant: `log log n / log(k(r−1)/r)`.
///
/// Returns `None` when `k(r−1)/r ≤ 1`, where her bound is vacuous.
pub fn gao_rounds_below(k: u32, r: u32, n: f64) -> Option<f64> {
    assert!(k >= 2 && r >= 2);
    let rate = k as f64 * (r as f64 - 1.0) / r as f64;
    if rate <= 1.0 {
        return None;
    }
    Some(n.ln().ln() / rate.ln())
}

/// Theorem 7's *round* prediction for subtable peeling:
/// `log log n / (r·log φ_{r−1} + log(k−1))`.
///
/// For `k = 2` the `log(k−1)` term vanishes and this is
/// `log log n / (r·log φ_{r−1})` rounds, i.e.
/// `log log n / log φ_{r−1}` subrounds.
pub fn predicted_subtable_rounds_below(k: u32, r: u32, n: f64) -> f64 {
    assert!(k >= 2 && r >= 3, "Theorem 7 requires r >= 3");
    let phi = fibonacci_growth_rate(r - 1);
    let denom = r as f64 * phi.ln() + ((k - 1) as f64).ln();
    n.ln().ln() / denom
}

/// Theorem 4/7's *subround* prediction: `r ×` the round prediction.
pub fn predicted_subrounds_below(k: u32, r: u32, n: f64) -> f64 {
    r as f64 * predicted_subtable_rounds_below(k, r, n)
}

/// Asymptotic ratio of subtable subrounds to plain rounds (Appendix B):
///
/// ```text
/// r · log((k−1)(r−1)) / (r·log φ_{r−1} + log(k−1))
/// ```
///
/// For `k = 2` this is `log(r−1) / log φ_{r−1}` — ≈1.456 at r=3, tending to
/// `log₂(r−1)` for large r. The point of Appendix B: it is *much* smaller
/// than the naive factor `r`.
pub fn subround_inflation(k: u32, r: u32) -> f64 {
    assert!(k >= 2 && r >= 3 && k + r >= 5);
    let phi = fibonacci_growth_rate(r - 1);
    let plain_rate = (((k - 1) * (r - 1)) as f64).ln();
    let sub_denom = r as f64 * phi.ln() + ((k - 1) as f64).ln();
    r as f64 * plain_rate / sub_denom
}

/// Least-squares slope of `y` against `x` — a tiny helper the experiment
/// harness uses to fit measured rounds against `log log n` (below threshold)
/// or `log n` (above threshold).
pub fn ls_slope(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 2);
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (xi, yi) in x.iter().zip(y) {
        num += (xi - mx) * (yi - my);
        den += (xi - mx) * (xi - mx);
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_grow_doubly_log() {
        let a = predicted_rounds_below(2, 4, 1e4);
        let b = predicted_rounds_below(2, 4, 1e8);
        let c = predicted_rounds_below(2, 4, 1e16);
        // log log n: doubling the exponent adds log(2)/log(3) ≈ 0.63.
        assert!(b - a > 0.0 && c - b > 0.0);
        assert!((c - b) - (b - a) < 0.05, "increments shrink (double-log)");
    }

    #[test]
    fn gao_constant_is_weaker() {
        // Gao's rate k(r−1)/r < (k−1)(r−1) for the paper's parameter range,
        // so her predicted round count is larger.
        for &(k, r) in &[(2u32, 4u32), (3, 3), (2, 5), (4, 3)] {
            let ours = predicted_rounds_below(k, r, 1e6);
            let gao = gao_rounds_below(k, r, 1e6).unwrap();
            assert!(
                gao > ours,
                "({k},{r}): Gao {gao} should exceed tight bound {ours}"
            );
        }
    }

    #[test]
    fn gao_vacuous_when_rate_below_one() {
        // k=2, r=2: rate = 1 → None (and the paper excludes it anyway).
        assert!(gao_rounds_below(2, 2, 1e6).is_none());
    }

    #[test]
    fn appendix_b_inflation_r3() {
        // Appendix B: r=3, k=2 ⇒ log(2)/log(φ_2) ≈ 1.4404 ("less than 1.5").
        let f = subround_inflation(2, 3);
        let expected = 2.0f64.ln() / 1.618_033_988_75f64.ln();
        assert!((f - expected).abs() < 1e-9);
        assert!(f < 1.5 && f > 1.4);
    }

    #[test]
    fn appendix_b_inflation_r4() {
        // Table 1 vs Table 5 observe a factor ≈ 2 for r=4, k=2; the
        // asymptotic constant is log(3)/log(φ_3) ≈ 1.80.
        let f = subround_inflation(2, 4);
        assert!((f - 3.0f64.ln() / 1.839_286_755_21f64.ln()).abs() < 1e-9);
        assert!(f > 1.7 && f < 2.0, "inflation {f}");
    }

    #[test]
    fn inflation_much_smaller_than_r() {
        for r in 3..9u32 {
            let f = subround_inflation(2, r);
            assert!(f < r as f64 / 1.5, "r={r}: inflation {f} should be ≪ r");
        }
    }

    #[test]
    fn subrounds_are_r_times_rounds() {
        let k = 2;
        let r = 4;
        let n = 1e6;
        let rounds = predicted_subtable_rounds_below(k, r, n);
        let subrounds = predicted_subrounds_below(k, r, n);
        assert!((subrounds - r as f64 * rounds).abs() < 1e-12);
    }

    #[test]
    fn slope_helper_recovers_line() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        assert!((ls_slope(&x, &y) - 3.0).abs() < 1e-12);
    }
}

//! The pure literal rule on random 3-CNF as a parallel peeling process:
//! below the pure-literal threshold density the formula empties in a
//! handful of rounds; above it the process stalls at a positive "core" of
//! clauses.
//!
//! ```sh
//! cargo run --release --example pure_literals
//! ```

use parallel_peeling::graph::rng::Xoshiro256StarStar;
use parallel_peeling::sat::{pure_literal_parallel, random_kcnf};

fn main() {
    let n_vars = 200_000usize;
    println!("random 3-CNF over {n_vars} variables, parallel pure-literal elimination\n");
    println!(
        "{:>8} {:>9} {:>8} {:>12} {:>10}",
        "density", "clauses", "rounds", "eliminated", "satisfied"
    );
    for density in [0.8f64, 1.2, 1.5, 1.7, 2.0, 2.5] {
        let m = (density * n_vars as f64) as usize;
        let cnf = random_kcnf(n_vars, m, 3, &mut Xoshiro256StarStar::new(17));
        let out = pure_literal_parallel(&cnf);
        if out.satisfied_all {
            assert!(cnf.is_satisfied_by(&out.assignment));
        }
        println!(
            "{:>8.1} {:>9} {:>8} {:>12} {:>10}",
            density,
            m,
            out.rounds,
            m - out.remaining_clauses,
            out.satisfied_all
        );
    }
    println!("\nthe pure-literal threshold for random 3-SAT sits near density ~1.63;");
    println!("below it rounds stay ~log log n, above it a clause core survives");
}

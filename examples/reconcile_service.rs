//! Two-process set reconciliation over the wire.
//!
//! Run against a separately started server (the genuinely two-process
//! story — this is what CI's smoke test does):
//!
//! ```sh
//! cargo run --release -p peel-service --bin peel-server -- --addr 127.0.0.1:7744 &
//! cargo run --release --example reconcile_service -- --addr 127.0.0.1:7744 --shutdown
//! ```
//!
//! Or standalone, in which case the example spawns the server in-process
//! and still talks to it over loopback TCP:
//!
//! ```sh
//! cargo run --release --example reconcile_service
//! ```

use std::time::{Duration, Instant};

use parallel_peeling::service::{Client, Server, ServiceConfig};

fn keys(range: std::ops::Range<u64>, tag: u64) -> Vec<u64> {
    range
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1).cloned());
    let send_shutdown = args.iter().any(|a| a == "--shutdown");

    // Without --addr, host the server ourselves (still over real TCP).
    let (_local_server, addr) = match addr {
        Some(a) => (None, a),
        None => {
            let server = Server::bind("127.0.0.1:0", ServiceConfig::for_diff_budget(4, 2_048))
                .expect("bind local server");
            let a = server.local_addr().to_string();
            println!("no --addr given; hosting an in-process server on {a}");
            (Some(server), a)
        }
    };

    println!("connecting to {addr} …");
    let mut client =
        Client::connect_retry(addr.as_str(), Duration::from_secs(10)).expect("connect");
    let hello = client.hello().expect("hello");
    println!(
        "server: protocol v{}, {} shards × {} cells (r = {}), batch size {}",
        hello.version,
        hello.shards,
        hello.base_config.total_cells(),
        hello.base_config.hashes,
        hello.batch_size,
    );

    // The "server side" of the story: 100k keys pushed over the wire.
    let shared = keys(0..99_600, 0x0);
    let server_only = keys(0..400, 0xA5A5_0000_0000_0000);
    let client_only = keys(0..350, 0xC3C3_0000_0000_0000);
    let mut server_set = shared.clone();
    server_set.extend(&server_only);
    let mut client_set = shared;
    client_set.extend(&client_only);

    let t = Instant::now();
    for chunk in server_set.chunks(8_192) {
        client.insert(chunk).expect("insert");
    }
    client.flush().expect("flush");
    println!(
        "seeded server with {} keys in {:.1} ms",
        server_set.len(),
        t.elapsed().as_secs_f64() * 1e3
    );

    // The client's own set differs in 750 of 100k keys; reconcile.
    let t = Instant::now();
    let diff = client.reconcile(&client_set).expect("reconcile");
    println!(
        "reconciled {} keys in {:.1} ms: complete = {}, {} server-only, {} client-only, \
         max {} parallel subrounds",
        client_set.len(),
        t.elapsed().as_secs_f64() * 1e3,
        diff.complete,
        diff.only_server.len(),
        diff.only_client.len(),
        diff.max_subrounds(),
    );
    for d in &diff.shards {
        println!(
            "  shard {}: epoch {}, {} subrounds, {}+{} keys",
            d.shard,
            d.epoch,
            d.subrounds,
            d.only_local.len(),
            d.only_remote.len()
        );
    }

    // The recovered symmetric difference must match exactly.
    assert!(diff.complete, "difference failed to decode");
    let mut want_server = server_only;
    want_server.sort_unstable();
    let mut want_client = client_only;
    want_client.sort_unstable();
    assert_eq!(diff.only_server, want_server, "server-only keys mismatch");
    assert_eq!(diff.only_client, want_client, "client-only keys mismatch");

    let stats = client.stats().expect("stats");
    println!(
        "server stats: {} ops in {} batches (occupancy {:.1}), {} recoveries, {} stalls",
        stats.ops_applied,
        stats.batches_applied,
        stats.mean_batch_occupancy(),
        stats.recoveries,
        stats.queue_stalls,
    );

    if send_shutdown {
        client.shutdown_server().expect("shutdown");
        println!("sent shutdown; server is stopping");
    }
    println!("OK: symmetric difference of 750 keys recovered exactly over TCP");
}

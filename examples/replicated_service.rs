//! Primary→follower replication over the wire.
//!
//! Run against separately started servers (the genuinely three-process
//! story — this is what CI's replication smoke test does):
//!
//! ```sh
//! cargo run --release -p peel-service --bin peel-server -- --addr 127.0.0.1:7745 &
//! cargo run --release -p peel-service --bin peel-server -- \
//!     --addr 127.0.0.1:7746 --follow 127.0.0.1:7745 --anti-entropy-ms 100 &
//! cargo run --release --example replicated_service -- \
//!     --primary 127.0.0.1:7745 --follower 127.0.0.1:7746 --shutdown
//! ```
//!
//! Or standalone, in which case the example hosts both the primary and
//! the follower in-process and still talks to them over loopback TCP:
//!
//! ```sh
//! cargo run --release --example replicated_service
//! ```
//!
//! Either way the client ingests through the **primary** only, waits for
//! replication, and then asserts the **follower** serves cell-identical
//! shard digests — the fast path streams sealed batches, and the
//! follower's periodic anti-entropy (IBLT reconcile against the primary)
//! heals anything the stream missed.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parallel_peeling::service::service::PeelService;
use parallel_peeling::service::{
    Client, Follower, FollowerConfig, Server, ServiceConfig, WireError,
};

fn keys(range: std::ops::Range<u64>, tag: u64) -> Vec<u64> {
    range
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let send_shutdown = args.iter().any(|a| a == "--shutdown");

    // Without --primary/--follower, host both in-process (real TCP all
    // the same). The follower adopts the primary's sharding through the
    // Hello handshake, exactly as `peel-server --follow` does.
    let mut hosts: Option<(Server, Server, Follower)> = None;
    let (primary_addr, follower_addr) = match (arg("--primary"), arg("--follower")) {
        (Some(p), Some(f)) => (p, f),
        _ => {
            let primary = Server::bind("127.0.0.1:0", ServiceConfig::for_diff_budget(4, 4_096))
                .expect("bind primary");
            let paddr = primary.local_addr();
            let mut probe =
                Client::connect_retry(paddr, Duration::from_secs(5)).expect("probe primary");
            let hello = probe.hello().expect("hello");
            let fsvc = Arc::new(PeelService::start(ServiceConfig::from_hello(&hello)));
            let fserver =
                Server::bind_with("127.0.0.1:0", Arc::clone(&fsvc)).expect("bind follower");
            let faddr = fserver.local_addr();
            let driver = Follower::start(
                fsvc,
                paddr,
                FollowerConfig {
                    anti_entropy_interval: Duration::from_millis(100),
                    ..FollowerConfig::default()
                },
            );
            println!("no --primary/--follower given; hosting in-process on {paddr} → {faddr}");
            hosts = Some((primary, fserver, driver));
            (paddr.to_string(), faddr.to_string())
        }
    };

    println!("primary {primary_addr}, follower {follower_addr}");
    let mut cp = Client::connect_retry(primary_addr.as_str(), Duration::from_secs(10))
        .expect("connect primary");
    let mut cf = Client::connect_retry(follower_addr.as_str(), Duration::from_secs(10))
        .expect("connect follower");
    let hello = cp.hello().expect("hello");
    println!(
        "primary: protocol v{}, {} shards × {} cells, batch size {}",
        hello.version,
        hello.shards,
        hello.base_config.total_cells(),
        hello.batch_size,
    );

    // Give the follower's subscription a moment to attach so the fast
    // path carries most of the workload (anti-entropy would heal a
    // missed prefix anyway, just more slowly).
    let deadline = Instant::now() + Duration::from_secs(10);
    while cp.stats().expect("stats").replication.followers == 0 {
        if Instant::now() >= deadline {
            println!("note: no follower subscribed yet; relying on anti-entropy alone");
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Ingest through the primary only: 30k inserts, then a slice of
    // deletes so the stream carries both directions.
    let ks = keys(0..30_000, 0x0);
    let t = Instant::now();
    for chunk in ks.chunks(4_096) {
        cp.insert(chunk).expect("insert");
    }
    cp.delete(&ks[..2_000]).expect("delete");
    cp.flush().expect("flush");
    println!(
        "ingested {} ops into the primary in {:.1} ms",
        ks.len() + 2_000,
        t.elapsed().as_secs_f64() * 1e3
    );

    // Wait until the follower serves cell-identical digests for every
    // shard — replication is done when reads agree, not when a queue
    // looks empty.
    let t = Instant::now();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let identical = (0..hello.shards).all(|shard| {
            let (_e, p) = cp.digest(shard).expect("primary digest");
            let (_e, f) = cf.digest(shard).expect("follower digest");
            p == f
        });
        if identical {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "follower digests never matched the primary"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    println!(
        "follower converged to identical shard digests in {:.1} ms",
        t.elapsed().as_secs_f64() * 1e3
    );

    // A reconcile against the *follower* now finds no difference from
    // the primary's net content — the follower genuinely serves the set.
    let mut net: Vec<u64> = ks[2_000..].to_vec();
    net.sort_unstable();
    let diff = cf.reconcile(&net).expect("reconcile follower");
    assert!(diff.complete, "follower reconcile failed to decode");
    assert!(
        diff.only_server.is_empty() && diff.only_client.is_empty(),
        "follower content differs: {}+{} keys",
        diff.only_server.len(),
        diff.only_client.len()
    );

    let ps = cp.stats().expect("primary stats");
    let fs = cf.stats().expect("follower stats");
    println!(
        "primary replication: {} follower(s), seq {} published / {} acked (max lag {}), \
         {} batches streamed, {} dropped",
        ps.replication.followers,
        ps.replication.published_seq,
        ps.replication.acked_min,
        ps.replication.max_lag,
        ps.replication.batches_streamed,
        ps.replication.batches_dropped,
    );
    println!(
        "follower replication: {} batches applied, {} skipped, {} torn; \
         {} anti-entropy rounds healed {} keys",
        fs.replication.batches_applied,
        fs.replication.batches_skipped,
        fs.replication.decode_errors,
        fs.replication.anti_entropy_rounds,
        fs.replication.anti_entropy_keys,
    );

    if send_shutdown {
        // Follower first: once the primary is gone the follower's
        // drivers would just spin on reconnect until told to stop.
        cf.shutdown_server().expect("shutdown follower");
        match cp.shutdown_server() {
            Ok(()) | Err(WireError::UnexpectedEof) => {}
            Err(e) => panic!("shutdown primary: {e}"),
        }
        println!("sent shutdown to follower and primary");
    }
    if let Some((mut p, mut f, mut driver)) = hosts.take() {
        driver.stop();
        f.shutdown();
        p.shutdown();
    }
    println!("OK: follower serves digests identical to the primary");
}

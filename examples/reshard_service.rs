//! Live resharding over the wire: split a running server 1 → 2 under
//! ingest and prove the contents came through intact.
//!
//! Run against a separately started single-shard server (what CI's
//! reshard smoke test does):
//!
//! ```sh
//! cargo run --release -p peel-service --bin peel-server -- \
//!     --addr 127.0.0.1:7747 --shards 1 &
//! cargo run --release --example reshard_service -- --addr 127.0.0.1:7747 --shutdown
//! ```
//!
//! Or standalone (the example hosts the server in-process, still over
//! loopback TCP):
//!
//! ```sh
//! cargo run --release --example reshard_service
//! ```
//!
//! The example ingests a key set, captures the decoded content before
//! the reshard, drives `ReshardBegin` → `ReshardCommit` while a second
//! connection keeps inserting, and asserts the post-reshard digests
//! decode to exactly the same content (plus the racing keys) — i.e. the
//! digest of the *set* is identical before and after; only its
//! placement changed.

use std::time::{Duration, Instant};

use parallel_peeling::service::{Client, Server, ServiceConfig};

fn keys(range: std::ops::Range<u64>, tag: u64) -> Vec<u64> {
    range
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag)
        .collect()
}

/// Decode every shard digest and return the sorted key set it serves.
fn decoded_content(client: &mut Client) -> Vec<u64> {
    let shards = client.refresh_hello().expect("hello").shards;
    let mut content = Vec::new();
    for shard in 0..shards {
        let (_epoch, iblt) = client.digest(shard).expect("digest");
        let rec = iblt.recover();
        assert!(rec.complete, "shard {shard} undecodable");
        assert!(rec.negative.is_empty(), "shard {shard} phantom deletes");
        content.extend(rec.positive);
    }
    content.sort_unstable();
    content
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1).cloned());
    let send_shutdown = args.iter().any(|a| a == "--shutdown");

    // Without --addr, host a single-shard server ourselves.
    let (_local_server, addr) = match addr {
        Some(a) => (None, a),
        None => {
            let server = Server::bind("127.0.0.1:0", ServiceConfig::for_diff_budget(1, 4_096))
                .expect("bind local server");
            let a = server.local_addr().to_string();
            println!("no --addr given; hosting an in-process server on {a}");
            (Some(server), a)
        }
    };

    println!("connecting to {addr} …");
    let mut client =
        Client::connect_retry(addr.as_str(), Duration::from_secs(10)).expect("connect");
    let hello = client.hello().expect("hello");
    println!(
        "server: protocol v{}, {} shard(s) × {} cells",
        hello.version,
        hello.shards,
        hello.base_config.total_cells(),
    );
    assert!(hello.version >= 4, "server too old for live resharding");
    let serving_shards = hello.shards;
    let to_shards = serving_shards * 2;

    let base = keys(0..1_000, 0xba5e_0000_0000_0000);
    client.insert(&base).expect("insert");
    client.flush().expect("flush");
    let before = decoded_content(&mut client);
    println!(
        "ingested {} keys across {serving_shards} shard(s)",
        before.len()
    );

    // Racing ingest on a second connection while the reshard runs.
    let racing = keys(0..300, 0x4ace_0000_0000_0000);
    let ingester = {
        let addr = addr.clone();
        let racing = racing.clone();
        std::thread::spawn(move || {
            let mut c2 = Client::connect(addr.as_str()).expect("connect ingester");
            for chunk in racing.chunks(25) {
                c2.insert(chunk).expect("racing insert");
            }
            c2.flush().expect("racing flush");
        })
    };

    let t = Instant::now();
    let status = client.reshard(to_shards).expect("reshard");
    let reshard_ms = t.elapsed().as_secs_f64() * 1e3;
    ingester.join().expect("ingester");
    println!(
        "reshard {serving_shards} -> {to_shards}: {reshard_ms:.1} ms, generation {}, \
         {} keys moved",
        status.generation, status.keys_moved,
    );
    assert!(!status.resharding);
    assert_eq!(status.serving_shards, to_shards);

    // Identical digest of the set before and after: the post-reshard
    // content is exactly base + racing keys — nothing lost, nothing
    // doubled, only re-placed.
    let after = decoded_content(&mut client);
    let mut want: Vec<u64> = before.iter().chain(racing.iter()).copied().collect();
    want.sort_unstable();
    assert_eq!(after, want, "content changed across the reshard");
    println!(
        "digests identical before/after: {} keys served by {to_shards} shards ✓",
        after.len()
    );

    if send_shutdown {
        client.shutdown_server().expect("shutdown");
        println!("sent Shutdown");
    }
}

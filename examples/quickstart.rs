//! Quickstart: peel a random hypergraph in parallel and compare against the
//! paper's theory.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use parallel_peeling::analysis::{self, c_star, predicted_rounds_below, Idealized};
use parallel_peeling::core::{peel_parallel, ParallelOpts};
use parallel_peeling::graph::models::Gnm;
use parallel_peeling::graph::rng::SplitMix64;

fn main() {
    let (k, r, n) = (2u32, 4usize, 500_000usize);
    let c = 0.70;
    let threshold = c_star(k, r as u32).unwrap();
    println!("k = {k}, r = {r}, n = {n}, edge density c = {c}");
    println!(
        "threshold c*_(k,r) = {threshold:.5} -> we are {} it",
        if c < threshold { "below" } else { "above" }
    );

    // Sample G^r_(n,cn) and peel it with synchronous parallel rounds.
    let g = Gnm::new(n, c, r).sample(&mut SplitMix64::new(2014));
    let out = peel_parallel(&g, k, &ParallelOpts::default());

    println!("\npeeling {} edges over {} vertices:", g.num_edges(), n);
    println!("  success (empty {k}-core): {}", out.success());
    println!("  rounds used:              {}", out.rounds);
    println!(
        "  Theorem 1 leading term:   {:.2} (log log n / log((k-1)(r-1)))",
        predicted_rounds_below(k, r as u32, n as f64)
    );
    println!(
        "  recurrence rounds:        {:?} (idealized model, same n)",
        Idealized::new(k, r as u32, c).rounds_to_empty(n as u64, 200)
    );

    // Per-round survivors vs the idealized prediction (Table 2 style).
    let predictions = Idealized::new(k, r as u32, c).survivor_predictions(n as u64, out.rounds);
    println!("\n  round | unpeeled (measured) | lambda_t*n (predicted)");
    for (stats, pred) in out.trace.iter().zip(predictions) {
        println!(
            "  {:>5} | {:>19} | {:>21.1}",
            stats.round, stats.unpeeled_vertices, pred
        );
    }

    // What would happen above the threshold?
    let above = analysis::fixedpoint::core_size_prediction(k, r as u32, 0.85, n as u64);
    println!("\nat c = 0.85 (above threshold) the 2-core would hold ~{above:.0} vertices");
}

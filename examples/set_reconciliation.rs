//! Set reconciliation with IBLTs: synchronize two large key sets across a
//! (simulated) link by exchanging a sketch sized to the *difference*, not
//! to the sets.
//!
//! ```sh
//! cargo run --release --example set_reconciliation
//! ```

use parallel_peeling::graph::rng::Xoshiro256StarStar;
use parallel_peeling::iblt::{reconcile, Iblt, IbltConfig};
use rand::RngCore;

fn main() {
    let set_size = 1_000_000usize;
    let diff_budget = 200usize; // expected max differences

    // Both hosts agree on a config sized for the difference.
    let cfg = IbltConfig::for_load(4, diff_budget, 0.6, 0xfeed);
    println!(
        "hosts hold ~{set_size} keys each; sketch = {} cells ({} bytes on the wire)",
        cfg.total_cells(),
        cfg.total_cells() * 24
    );

    // Host A and host B share most keys; each has a few unique ones.
    let mut rng = Xoshiro256StarStar::new(99);
    let shared: Vec<u64> = (0..set_size).map(|_| rng.next_u64()).collect();
    let a_only: Vec<u64> = (0..37u64).map(|i| 0xa000_0000_0000_0000 | i).collect();
    let b_only: Vec<u64> = (0..53u64).map(|i| 0xb000_0000_0000_0000 | i).collect();

    let mut host_a = Iblt::new(cfg);
    for &k in shared.iter().chain(&a_only) {
        host_a.insert(k);
    }
    let mut host_b = Iblt::new(cfg);
    for &k in shared.iter().chain(&b_only) {
        host_b.insert(k);
    }

    // B ships its sketch to A; A subtracts and decodes.
    let diff = reconcile(&host_a, &host_b);
    println!("decode complete: {}", diff.complete);
    println!(
        "A-only keys found: {} (expected {})",
        diff.only_in_a.len(),
        a_only.len()
    );
    println!(
        "B-only keys found: {} (expected {})",
        diff.only_in_b.len(),
        b_only.len()
    );
    assert!(diff.complete);
    assert_eq!(diff.only_in_a, a_only);
    assert_eq!(diff.only_in_b, b_only);
    println!("sets reconciled with O(d) communication, independent of set size");
}

//! Peeling-based erasure code: encode a message into XOR check symbols, lose
//! a fraction of everything in transit, decode by parallel peeling — and see
//! the paper's threshold appear as the code's recovery cliff.
//!
//! ```sh
//! cargo run --release --example erasure_code
//! ```

use parallel_peeling::analysis::c_star;
use parallel_peeling::codes::{PeelingCode, Symbol};
use parallel_peeling::graph::rng::Xoshiro256StarStar;
use rand::Rng;

fn main() {
    let msg_len = 200_000usize;
    let r = 4usize;
    let code = PeelingCode::new(msg_len, msg_len, r, 0xc0de);
    let message: Vec<u64> = (0..msg_len as u64)
        .map(|i| i.wrapping_mul(0x9e3779b9))
        .collect();
    let checks = code.encode(&message);
    let threshold = c_star(2, r as u32).unwrap();
    println!(
        "message {msg_len} symbols, checks {} cells, r = {r}; peeling threshold {threshold:.4}",
        code.check_cells()
    );
    println!("\nerasure sweep (message symbols erased / check cells = effective load):");
    println!(
        "{:>10} {:>8} {:>10} {:>10}",
        "erased", "load", "recovered", "complete"
    );

    let mut rng = Xoshiro256StarStar::new(3);
    for pct in [50usize, 65, 74, 79, 85] {
        let erased = msg_len * pct / 100;
        let mut rx: Vec<Symbol> = message.iter().map(|&s| Some(s)).collect();
        // Erase a random subset of the message.
        let mut wiped = 0usize;
        while wiped < erased {
            let i = rng.gen_range(0..msg_len);
            if rx[i].is_some() {
                rx[i] = None;
                wiped += 1;
            }
        }
        let rx_checks: Vec<Symbol> = checks.iter().map(|&c| Some(c)).collect();
        let out = code.par_decode(&mut rx, &rx_checks);
        let load = erased as f64 / code.check_cells() as f64;
        println!(
            "{:>10} {:>8.3} {:>10} {:>10}",
            erased, load, out.recovered, out.complete
        );
        if out.complete {
            assert!(rx.iter().zip(&message).all(|(g, w)| g.unwrap() == *w));
        }
    }
    println!("\nthe cliff sits at load ≈ {threshold:.3}, exactly the paper's c*_(2,{r})");
}

//! Sparse recovery — the paper's motivating IBLT application: N items are
//! inserted, all but n are deleted, and the survivors are listed from an
//! O(n)-space sketch with parallel (subround) recovery.
//!
//! ```sh
//! cargo run --release --example sparse_recovery
//! ```

use parallel_peeling::iblt::sparse::SparseRecovery;
use std::time::Instant;

fn main() {
    let transient = 2_000_000usize; // items that come and go
    let survivors = 1_000usize; // items that stay

    let sketch = SparseRecovery::new(survivors, 7);
    println!(
        "sketch sized for {survivors} survivors; streaming {transient} transient items through it"
    );

    let all: Vec<u64> = (0..transient as u64).map(|i| i * 2 + 1).collect();
    let t0 = Instant::now();
    sketch.par_insert(&all);
    sketch.par_delete(&all[survivors..]);
    println!("stream processed in {:?}", t0.elapsed());

    let t0 = Instant::now();
    let out = sketch.list();
    println!(
        "parallel recovery in {:?}: complete = {}, {} keys listed",
        t0.elapsed(),
        out.complete,
        out.positive.len()
    );
    assert!(out.complete);
    let mut got = out.positive;
    got.sort_unstable();
    assert_eq!(got, all[..survivors]);
    println!("all survivors recovered exactly");
}

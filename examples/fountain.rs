//! Rateless transmission with an LT fountain code, plus Biff-code error
//! correction — two more faces of peeling (paper refs [14], [17]).
//!
//! ```sh
//! cargo run --release --example fountain
//! ```

use parallel_peeling::codes::{BiffCode, LtCode};

fn main() {
    // --- LT fountain: decode from ANY sufficiently large symbol subset ---
    let k = 20_000usize;
    let code = LtCode::new(k, 99);
    let message: Vec<u64> = (0..k as u64)
        .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
        .collect();

    // The sender streams symbols forever; the receiver catches an arbitrary
    // window of them.
    let stream = code.encode_block(&message, 2 * k);
    let window = &stream[3_000..3_000 + (k as f64 * 1.18) as usize];
    let (decoded, out) = code.par_decode(window);
    println!(
        "LT fountain: {} symbols caught (overhead {:.1}%), complete = {}, {} parallel rounds",
        window.len(),
        100.0 * (window.len() as f64 / k as f64 - 1.0),
        out.complete,
        out.rounds
    );
    assert!(out.complete);
    assert!(decoded.iter().zip(&message).all(|(d, w)| d.unwrap() == *w));

    // --- Biff code: correct substitution errors with an O(t) sketch ------
    let n = 500_000usize;
    let original: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let biff = BiffCode::new(128, 7);
    let sketch = biff.sketch(&original);
    println!(
        "\nBiff code: {n}-symbol message, sketch = {} cells (message-size independent)",
        biff.sketch_cells()
    );

    let mut corrupted = original.clone();
    for e in 0..100usize {
        corrupted[e * 4_999 + 11] ^= 0x5a5a_5a5a;
    }
    let out = biff.correct(&mut corrupted, &sketch);
    println!(
        "corrected {} corrupted symbols, complete = {}",
        out.corrected.len(),
        out.complete
    );
    assert!(out.complete);
    assert_eq!(corrupted, original);
    println!("message restored exactly");
}

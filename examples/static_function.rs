//! Build a Bloomier-filter-style static function (key → value map) by
//! parallel peeling, then query it.
//!
//! Construction solves a random sparse XOR system: peel the key/cell
//! hypergraph to get an elimination order (O(log log n) parallel rounds
//! below the threshold — Theorem 1), then back-substitute one parallel pass
//! per round in reverse.
//!
//! ```sh
//! cargo run --release --example static_function
//! ```

use parallel_peeling::staticfn::{BuildOptions, StaticFunction};
use std::time::Instant;

fn main() {
    let n = 1_000_000usize;
    let keys: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(0x2545f4914f6cdd1d) | 1)
        .collect();
    let values: Vec<u64> = keys.iter().map(|&k| k.rotate_left(23) ^ 0xffee).collect();

    for (label, opts) in [
        (
            "serial build  ",
            BuildOptions {
                parallel: false,
                ..Default::default()
            },
        ),
        ("parallel build", BuildOptions::default()),
    ] {
        let t0 = Instant::now();
        let f = StaticFunction::build(&keys, &values, &opts).expect("build");
        let dt = t0.elapsed();
        println!(
            "{label}: {n} keys -> {} cells ({:.2} bits/key) in {dt:?}",
            f.table_size(),
            f.bits_per_key(n),
        );

        // Query correctness on every key.
        let t0 = Instant::now();
        let mut wrong = 0usize;
        for (k, v) in keys.iter().zip(&values) {
            if f.get(*k) != *v {
                wrong += 1;
            }
        }
        println!(
            "  verified {n} lookups in {:?} ({} wrong)",
            t0.elapsed(),
            wrong
        );
        assert_eq!(wrong, 0);
    }
    println!("note: lookups for keys outside the build set return arbitrary values");
}

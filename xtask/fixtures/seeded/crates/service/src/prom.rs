//! Seeded fixture for the metrics-registry pass: three exported
//! families, of which `peel_fixture_undocumented_total` is deliberately
//! absent from the fixture README's metrics table.

pub const REGISTRY: &[(&str, &str, &str)] = &[
    (
        "peel_fixture_documented_total",
        "counter",
        "A documented counter",
    ),
    ("peel_fixture_gauge", "gauge", "A documented gauge"),
    (
        "peel_fixture_undocumented_total",
        "counter",
        "Missing from the README table on purpose",
    ),
];

//! Seeded lint fixture: a miniature wire module violating every pass
//! the real `crates/service/src/wire.rs` must satisfy. The xtask tests
//! assert each violation below is caught — proving the lint actually
//! fails on a dirty tree, not just passes on a clean one.

pub enum Request {
    Ping,
    Shutdown,
}

pub enum Response {
    Pong,
    Error,
}

pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Ping => vec![0],
        // VIOLATION (enum coverage): Request::Shutdown is not encoded.
        _ => vec![255],
    }
}

pub fn decode_request(payload: &[u8]) -> Request {
    // VIOLATION (panic-free zone): slice indexing in a decode path.
    match payload[0] {
        0 => Request::Ping,
        1 => Request::Shutdown,
        // VIOLATION (panic-free zone): panic on hostile input.
        t => panic!("bad tag {t}"),
    }
}

pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Pong => vec![0],
        Response::Error => vec![1],
    }
}

pub fn decode_response(payload: &[u8]) -> Response {
    // VIOLATION (panic-free zone): unwrap in a decode path.
    match payload.first().copied().unwrap() {
        0 => Response::Pong,
        _ => Response::Error,
    }
}

//! Seeded lint fixture: the dispatch half. `Request::Shutdown` is
//! deliberately missing from `handle_request` (enum-coverage
//! violation), and the `.expect(` is a panic-zone violation.

use super::wire::{Request, Response};

pub fn handle_request(req: Request) -> Response {
    match req {
        Request::Ping => Response::Pong,
        // VIOLATION (enum coverage): Request::Shutdown unhandled.
        _ => non_total().expect("fixture"),
    }
}

fn non_total() -> Option<Response> {
    Some(Response::Error)
}

//! Seeded lint fixture: an unjustified memory ordering and a banned
//! std lock, both of which `cargo xtask lint` must flag.

// VIOLATION (std lock ban): std::sync::Mutex outside the audited modules.
use std::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

pub fn racy_counter() -> u64 {
    static C: AtomicU64 = AtomicU64::new(0);
    static _GUARDED: Mutex<()> = Mutex::new(());
    // VIOLATION (ordering justification): no `// ordering:` comment.
    C.fetch_add(1, Ordering::SeqCst)
}

pub fn justified_counter() -> u64 {
    static C: AtomicU64 = AtomicU64::new(0);
    // ordering: Relaxed — a pure statistics counter; this one must NOT
    // be flagged (negative control for the justification pass).
    C.fetch_add(1, Ordering::Relaxed)
}

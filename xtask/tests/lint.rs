//! The lint must do two things: pass on the merged tree, and *fail* on
//! the seeded fixture tree — a lint that cannot catch its target bug
//! classes proves nothing by passing.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .to_path_buf()
}

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/seeded")
}

#[test]
fn merged_tree_is_clean() {
    let violations = xtask::lint_all(&repo_root());
    assert!(
        violations.is_empty(),
        "lint must be clean at merge, found:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_ordering_violation_is_caught() {
    let v = xtask::check_ordering_justified(&fixture_root());
    assert_eq!(v.len(), 1, "exactly the unjustified site, got {v:?}");
    assert!(v[0].file.ends_with("crates/other/src/lib.rs"));
    assert!(v[0].message.contains("Ordering::SeqCst"));
}

#[test]
fn seeded_std_lock_violation_is_caught() {
    let v = xtask::check_std_sync_ban(&fixture_root());
    assert_eq!(v.len(), 1, "exactly the std::sync::Mutex import, got {v:?}");
    assert!(v[0].file.ends_with("crates/other/src/lib.rs"));
}

#[test]
fn seeded_panic_zone_violations_are_caught() {
    let v = xtask::check_panic_free_zone(&fixture_root());
    let messages: Vec<String> = v.iter().map(ToString::to_string).collect();
    for needle in [".unwrap()", "panic!(", ".expect(", "slice indexing"] {
        assert!(
            messages.iter().any(|m| m.contains(needle)),
            "expected a {needle} finding in {messages:?}"
        );
    }
}

#[test]
fn seeded_enum_coverage_violations_are_caught() {
    let v = xtask::check_enum_coverage(&fixture_root());
    let messages: Vec<String> = v.iter().map(|x| x.message.clone()).collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("Request::Shutdown") && m.contains("encode_request")),
        "Shutdown missing from encode must be caught, got {messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("Request::Shutdown") && m.contains("handle_request")),
        "Shutdown missing from dispatch must be caught, got {messages:?}"
    );
    // The fully-covered Response decode path is a negative control.
    assert!(
        !messages
            .iter()
            .any(|m| m.contains("Response::") && m.contains("decode_response")),
        "decode_response covers every Response variant, got {messages:?}"
    );
}

#[test]
fn seeded_metrics_registry_violation_is_caught() {
    let v = xtask::check_metrics_registry(&fixture_root());
    assert_eq!(v.len(), 1, "exactly the undocumented metric, got {v:?}");
    assert!(v[0].file.ends_with("README.md"));
    assert!(
        v[0].message.contains("peel_fixture_undocumented_total"),
        "got {v:?}"
    );
}

#[test]
fn merged_metrics_registry_is_parsed_and_nonempty() {
    // The real registry must parse (the pass silently no-ops when the
    // file is absent, so an accidentally unparseable REGISTRY would
    // otherwise disable the check) — prove it sees the histograms.
    let entries = xtask::registry_entries(&repo_root()).expect("prom.rs registry must parse");
    assert!(entries.len() >= 30, "suspiciously small registry");
    assert!(entries
        .iter()
        .any(|(n, t, _)| n == "peel_request_latency_ns" && t == "histogram"));
    assert!(entries
        .iter()
        .any(|(n, t, _)| n == "peel_replication_lag_batches" && t == "histogram"));
}

#[test]
fn orderings_table_lists_every_site_with_its_justification() {
    let table = xtask::orderings_table(&repo_root());
    // Spot checks: the audited server downgrade and the bitset module.
    assert!(table.contains("crates/service/src/server.rs"));
    assert!(table.contains("crates/graph/src/bits.rs"));
    assert!(
        !table.contains("UNJUSTIFIED"),
        "no unjustified sites may remain in the merged tree"
    );
}

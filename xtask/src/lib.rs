//! The `cargo xtask lint` invariant passes.
//!
//! These are *textual* checks, deliberately: they guard conventions the
//! type system cannot see (a justification comment next to a memory
//! ordering, a module boundary for `std::sync` locks, a panic-free zone
//! in the wire decoder), and they must keep working on any tree state —
//! including one that does not compile. Six passes:
//!
//! 1. **Ordering justification** ([`check_ordering_justified`]): every
//!    non-comment occurrence of `Ordering::` must carry a `// ordering:`
//!    justification — on the same line, or in the contiguous comment
//!    block directly above it.
//! 2. **std lock ban** ([`check_std_sync_ban`]): `std::sync::Mutex` /
//!    `RwLock` are banned outside the poison-recovery module
//!    (`crates/service/src/lock.rs`) and the per-crate `src/sync.rs`
//!    model-checking shims — everything else uses `parking_lot` or the
//!    `crate::sync` indirection, so a panicking thread can never cascade
//!    poisoning through an unaudited lock.
//! 3. **Panic-free zone** ([`check_panic_free_zone`]): the wire decode
//!    paths and frame handlers (`crates/service/src/wire.rs`,
//!    `crates/service/src/server.rs`) must not contain `unwrap`,
//!    `expect`, `panic!`-family macros, or slice indexing outside test
//!    code — a malformed frame must become a `WireError`, never a
//!    panic. Exceptions live in `xtask/lint-allow.txt`.
//! 4. **Enum coverage** ([`check_enum_coverage`]): every `Request` and
//!    `Response` variant must appear in its encoder, its decoder, and
//!    (for requests) the server dispatch — a variant added to the wire
//!    enum but forgotten in one of the three shows up here, not as a
//!    silent protocol hole.
//! 5. **README orderings table** ([`check_readme_orderings`]): the
//!    per-site orderings table in README.md (between the
//!    `<!-- orderings:begin -->` / `<!-- orderings:end -->` markers)
//!    must match the tree; regenerate with
//!    `cargo xtask lint --write-orderings`.
//! 6. **Metrics registry** ([`check_metrics_registry`]): every metric
//!    family declared in `crates/service/src/prom.rs`'s `REGISTRY` must
//!    have a non-empty help string and a documentation row in
//!    README.md's metrics table (between the `<!-- metrics:begin -->` /
//!    `<!-- metrics:end -->` markers), and the table must not document
//!    metrics the registry no longer exports — an exported family
//!    cannot ship undocumented, and docs cannot go stale silently.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod conn_smoke;
pub mod mesh_smoke;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the lint root.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// What rule was broken and how to fix it.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

/// Directories scanned for Rust sources, relative to the lint root.
/// `vendor/` (third-party shims) and `xtask/` (this tool and its seeded
/// fixtures) are deliberately absent.
const SCAN_ROOTS: &[&str] = &["crates", "tests", "src"];

/// The panic-free zone: wire decoding, frame dispatch, and the reactor
/// event loop, where a malformed or hostile frame must surface as a
/// `WireError`/`Response::Error`, never a panic — the reactor
/// especially, since one thread owns every connection.
const PANIC_FREE_FILES: &[&str] = &[
    "crates/service/src/wire.rs",
    "crates/service/src/server.rs",
    "crates/service/src/reactor.rs",
];

/// Files allowed to name `std::sync::{Mutex, RwLock}`: the one module
/// that recovers from poisoning, and the per-crate model-checking shims
/// whose whole job is re-exporting the std types.
fn std_sync_exempt(rel: &str) -> bool {
    rel == "crates/service/src/lock.rs" || rel.ends_with("src/sync.rs")
}

/// All `.rs` files under the scan roots, relative paths, sorted.
pub fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for scan in SCAN_ROOTS {
        walk(&root.join(scan), &mut out);
    }
    out.sort();
    out.iter()
        .map(|p| p.strip_prefix(root).unwrap_or(p).to_path_buf())
        .collect()
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Strip `//` line comments and the contents of string literals, so the
/// passes match code, not prose. Char literals and raw strings are
/// handled well enough for this codebase's shapes; the output keeps the
/// line's length class but not its exact text.
fn code_of(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    let mut in_str = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_str {
            if c == '\\' {
                i += 2;
                continue;
            }
            if c == '"' {
                in_str = false;
            }
            i += 1;
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => break,
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// An ordering site: a line whose *code* mentions `Ordering::`.
struct OrderingSite {
    file: String,
    line: usize,
    /// The distinct `Ordering::X` tokens on the line.
    orderings: Vec<String>,
    /// First line of the justification block, if any.
    justification: Option<String>,
}

fn ordering_sites(root: &Path) -> Vec<OrderingSite> {
    let mut sites = Vec::new();
    for rel in rust_files(root) {
        let Ok(text) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let lines: Vec<&str> = text.lines().collect();
        for (idx, raw) in lines.iter().enumerate() {
            let code = code_of(raw);
            if !code.contains("Ordering::") {
                continue;
            }
            let mut orderings: Vec<String> = Vec::new();
            for (pos, _) in code.match_indices("Ordering::") {
                let rest = &code[pos + "Ordering::".len()..];
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric())
                    .collect();
                if !name.is_empty() && !orderings.contains(&name) {
                    orderings.push(name);
                }
            }
            sites.push(OrderingSite {
                file: rel.display().to_string(),
                line: idx + 1,
                orderings,
                justification: justification_for(&lines, idx, raw),
            });
        }
    }
    sites
}

/// The justification for the site at `lines[idx]`: a trailing
/// `// ordering:` on the same line, or a contiguous block of `//`
/// comment lines directly above it containing one. Returns the text of
/// the justification's first line.
fn justification_for(lines: &[&str], idx: usize, raw: &str) -> Option<String> {
    if let Some(pos) = raw.find("// ordering:") {
        return Some(raw[pos + "// ordering:".len()..].trim().to_string());
    }
    let mut start = None;
    for j in (0..idx).rev() {
        let t = lines[j].trim_start();
        if t.starts_with("//") {
            if let Some(rest) = t.strip_prefix("// ordering:") {
                start = Some(rest.trim().to_string());
            }
            continue;
        }
        break;
    }
    start
}

/// Pass 1: every `Ordering::` use carries a justification.
pub fn check_ordering_justified(root: &Path) -> Vec<Violation> {
    ordering_sites(root)
        .into_iter()
        .filter(|s| s.justification.is_none())
        .map(|s| Violation {
            file: s.file,
            line: s.line,
            message: format!(
                "Ordering::{} without a `// ordering:` justification on the line or in \
                 the comment block above it",
                s.orderings.first().map(String::as_str).unwrap_or("?")
            ),
        })
        .collect()
}

/// Pass 2: `std::sync::{Mutex, RwLock}` only in the audited modules.
pub fn check_std_sync_ban(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    for rel in rust_files(root) {
        let rel_str = rel.display().to_string();
        if std_sync_exempt(&rel_str) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        for (idx, raw) in text.lines().enumerate() {
            let code = code_of(raw);
            if code.contains("std::sync::")
                && !code.contains("std::sync::atomic")
                && (code.contains("Mutex") || code.contains("RwLock"))
            {
                out.push(Violation {
                    file: rel_str.clone(),
                    line: idx + 1,
                    message: "std::sync::{Mutex, RwLock} are banned outside \
                              crates/service/src/lock.rs and the src/sync.rs shims — use \
                              parking_lot or the crate::sync indirection"
                        .into(),
                });
            }
        }
    }
    out
}

/// Allowlist entries: `path-suffix: substring`, one per line, `#`
/// comments. A panic-zone finding is suppressed when an entry's path is
/// a suffix of the file and its substring occurs in the flagged line.
fn load_allowlist(root: &Path) -> Vec<(String, String)> {
    let Ok(text) = std::fs::read_to_string(root.join("xtask/lint-allow.txt")) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (path, pat) = l.split_once(": ")?;
            Some((path.trim().to_string(), pat.trim().to_string()))
        })
        .collect()
}

/// Pass 3: no unwrap / expect / panic-family macro / slice indexing in
/// the panic-free zone (test modules excluded, allowlist honored).
pub fn check_panic_free_zone(root: &Path) -> Vec<Violation> {
    let allow = load_allowlist(root);
    let mut out = Vec::new();
    for rel in PANIC_FREE_FILES {
        let Ok(text) = std::fs::read_to_string(root.join(rel)) else {
            continue;
        };
        for (idx, raw) in text.lines().enumerate() {
            // The test module (by convention last in the file) is out of
            // scope — tests may unwrap freely.
            if raw.trim_start().starts_with("#[cfg(test)]") {
                break;
            }
            let code = code_of(raw);
            let mut hits: Vec<&str> = Vec::new();
            for pat in [
                ".unwrap()",
                ".expect(",
                "panic!(",
                "unreachable!(",
                "todo!(",
            ] {
                if code.contains(pat) {
                    hits.push(pat);
                }
            }
            if has_indexing(&code) {
                hits.push("slice indexing");
            }
            for hit in hits {
                let allowed = allow
                    .iter()
                    .any(|(path, pat)| rel.ends_with(path.as_str()) && raw.contains(pat.as_str()));
                if !allowed {
                    out.push(Violation {
                        file: (*rel).to_string(),
                        line: idx + 1,
                        message: format!(
                            "{hit} in the panic-free zone — return a WireError (or add an \
                             `xtask/lint-allow.txt` entry with a written argument)"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// `foo[`, `foo()[`, `foo]ms[` — an index expression, as opposed to an
/// array type/literal (`[u8; 4]`), an attribute (`#[...]`), or a macro
/// (`vec![`).
fn has_indexing(code: &str) -> bool {
    let b = code.as_bytes();
    for (i, &c) in b.iter().enumerate() {
        if c != b'[' || i == 0 {
            continue;
        }
        let prev = b[i - 1] as char;
        if prev.is_ascii_alphanumeric() || prev == '_' || prev == ')' || prev == ']' {
            return true;
        }
    }
    false
}

/// The variants of `pub enum <name>` in `text`, by brace matching.
fn enum_variants(text: &str, name: &str) -> Vec<String> {
    let Some(body) = region(text, &format!("pub enum {name}")) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut depth = 0usize;
    for line in body.lines() {
        let t = line.trim();
        // Only depth-1 lines are variant declarations; deeper braces are
        // struct-variant fields.
        if depth == 1 {
            let ident: String = t
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !ident.is_empty() && ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                out.push(ident);
            }
        }
        depth += t.matches('{').count();
        depth = depth.saturating_sub(t.matches('}').count());
    }
    out
}

/// The brace-matched region starting at the first occurrence of
/// `opener` (e.g. a fn or enum header) — header included.
fn region(text: &str, opener: &str) -> Option<String> {
    let start = text.find(opener)?;
    let brace = start + text[start..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in text[brace..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(text[start..brace + i + 1].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Pass 4: every wire enum variant is covered by encode, decode, and
/// (for requests) the server dispatch.
pub fn check_enum_coverage(root: &Path) -> Vec<Violation> {
    let wire_rel = "crates/service/src/wire.rs";
    let server_rel = "crates/service/src/server.rs";
    let Ok(wire) = std::fs::read_to_string(root.join(wire_rel)) else {
        return Vec::new();
    };
    let server = std::fs::read_to_string(root.join(server_rel)).unwrap_or_default();

    let mut out = Vec::new();
    let mut require =
        |variants: &[String], enum_name: &str, fn_name: &str, text: &Option<String>, file: &str| {
            // Coverage means the *code* names the variant — a comment
            // mentioning it (docs, TODOs) is not coverage.
            let body_code = text
                .as_ref()
                .map(|b| b.lines().map(code_of).collect::<Vec<_>>().join("\n"));
            let Some(body) = &body_code else {
                out.push(Violation {
                    file: file.to_string(),
                    line: 0,
                    message: format!(
                        "expected `fn {fn_name}` (coverage target for {enum_name}) not found"
                    ),
                });
                return;
            };
            for v in variants {
                if !body.contains(&format!("{enum_name}::{v}")) {
                    out.push(Violation {
                        file: file.to_string(),
                        line: 0,
                        message: format!("{enum_name}::{v} is not covered in `fn {fn_name}`"),
                    });
                }
            }
        };

    let requests = enum_variants(&wire, "Request");
    let responses = enum_variants(&wire, "Response");
    if requests.is_empty() || responses.is_empty() {
        return vec![Violation {
            file: wire_rel.to_string(),
            line: 0,
            message: "could not parse the Request/Response enums".into(),
        }];
    }
    require(
        &requests,
        "Request",
        "encode_request",
        &region(&wire, "pub fn encode_request"),
        wire_rel,
    );
    require(
        &requests,
        "Request",
        "decode_request",
        &region(&wire, "pub fn decode_request"),
        wire_rel,
    );
    require(
        &requests,
        "Request",
        "handle_request",
        &region(&server, "pub fn handle_request"),
        server_rel,
    );
    require(
        &responses,
        "Response",
        "encode_response",
        &region(&wire, "pub fn encode_response"),
        wire_rel,
    );
    require(
        &responses,
        "Response",
        "decode_response",
        &region(&wire, "pub fn decode_response"),
        wire_rel,
    );
    out
}

/// The generated per-site orderings table (GitHub markdown).
pub fn orderings_table(root: &Path) -> String {
    let mut rows = String::from("| Site | Orderings | Why this is enough |\n|---|---|---|\n");
    for s in ordering_sites(root) {
        let why = s
            .justification
            .unwrap_or_else(|| "**UNJUSTIFIED** (cargo xtask lint fails)".into());
        rows.push_str(&format!(
            "| `{}:{}` | {} | {} |\n",
            s.file,
            s.line,
            s.orderings.join(", "),
            why
        ));
    }
    rows
}

const TABLE_BEGIN: &str = "<!-- orderings:begin -->";
const TABLE_END: &str = "<!-- orderings:end -->";

/// Pass 5: README's orderings table matches the tree.
pub fn check_readme_orderings(root: &Path) -> Vec<Violation> {
    let readme = root.join("README.md");
    let Ok(text) = std::fs::read_to_string(&readme) else {
        return vec![Violation {
            file: "README.md".into(),
            line: 0,
            message: "README.md not found".into(),
        }];
    };
    let (Some(b), Some(e)) = (text.find(TABLE_BEGIN), text.find(TABLE_END)) else {
        return vec![Violation {
            file: "README.md".into(),
            line: 0,
            message: format!("missing {TABLE_BEGIN} / {TABLE_END} markers"),
        }];
    };
    let current = text[b + TABLE_BEGIN.len()..e].trim();
    if current != orderings_table(root).trim() {
        return vec![Violation {
            file: "README.md".into(),
            line: 0,
            message: "orderings table is stale — run `cargo xtask lint --write-orderings`".into(),
        }];
    }
    Vec::new()
}

/// Rewrite README's orderings table in place.
pub fn write_readme_orderings(root: &Path) -> std::io::Result<()> {
    let readme = root.join("README.md");
    let text = std::fs::read_to_string(&readme)?;
    let (Some(b), Some(e)) = (text.find(TABLE_BEGIN), text.find(TABLE_END)) else {
        return Err(std::io::Error::other(format!(
            "README.md is missing the {TABLE_BEGIN} / {TABLE_END} markers"
        )));
    };
    let new = format!(
        "{}{}\n{}\n{}{}",
        &text[..b],
        TABLE_BEGIN,
        orderings_table(root).trim(),
        TABLE_END,
        &text[e + TABLE_END.len()..]
    );
    std::fs::write(&readme, new)
}

/// Path of the metrics registry the sixth pass parses.
const PROM_REL: &str = "crates/service/src/prom.rs";
const METRICS_BEGIN: &str = "<!-- metrics:begin -->";
const METRICS_END: &str = "<!-- metrics:end -->";

/// The `(name, type, help)` entries of `REGISTRY` in `prom.rs`, parsed
/// textually: every string literal between the declaration and its
/// closing `];`, chunked into triples (robust to rustfmt's line
/// splitting, by the module's "plain string-literal tuples only"
/// convention). `None` when the tree has no registry.
pub fn registry_entries(root: &Path) -> Option<Vec<(String, String, String)>> {
    let text = std::fs::read_to_string(root.join(PROM_REL)).ok()?;
    let start = text.find("pub const REGISTRY")?;
    let body = &text[start..start + text[start..].find("];")?];
    let mut strings = Vec::new();
    let mut rest = body;
    while let Some(open) = rest.find('"') {
        let after = &rest[open + 1..];
        let close = after.find('"')?;
        strings.push(after[..close].to_string());
        rest = &after[close + 1..];
    }
    Some(
        strings
            .chunks_exact(3)
            .map(|c| (c[0].clone(), c[1].clone(), c[2].clone()))
            .collect(),
    )
}

/// The metric names documented in README's metrics table: the first
/// backtick-quoted token of each `|`-delimited row between the markers.
fn readme_metric_rows(text: &str) -> Option<Vec<String>> {
    let b = text.find(METRICS_BEGIN)?;
    let e = text.find(METRICS_END)?;
    let mut out = Vec::new();
    for line in text[b..e].lines() {
        let t = line.trim();
        if !t.starts_with('|') {
            continue;
        }
        let Some(cell) = t.trim_start_matches('|').split('|').next() else {
            continue;
        };
        let cell = cell.trim();
        if let Some(name) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) {
            out.push(name.to_string());
        }
    }
    Some(out)
}

/// Pass 6: the prom.rs metric registry and README's metrics table agree
/// — every exported family is documented with a help string, and no
/// documented family has been dropped from the registry.
pub fn check_metrics_registry(root: &Path) -> Vec<Violation> {
    let Some(entries) = registry_entries(root) else {
        // No registry, nothing to check (pre-observability trees and
        // the seeded fixtures without a prom.rs).
        return Vec::new();
    };
    let mut out = Vec::new();
    for (name, ty, help) in &entries {
        if help.trim().is_empty() {
            out.push(Violation {
                file: PROM_REL.into(),
                line: 0,
                message: format!("metric {name} has an empty help string"),
            });
        }
        if !matches!(ty.as_str(), "counter" | "gauge" | "histogram") {
            out.push(Violation {
                file: PROM_REL.into(),
                line: 0,
                message: format!("metric {name} has unknown type `{ty}`"),
            });
        }
    }
    let Ok(readme) = std::fs::read_to_string(root.join("README.md")) else {
        out.push(Violation {
            file: "README.md".into(),
            line: 0,
            message: "README.md not found (metrics table required)".into(),
        });
        return out;
    };
    let Some(rows) = readme_metric_rows(&readme) else {
        out.push(Violation {
            file: "README.md".into(),
            line: 0,
            message: format!("missing {METRICS_BEGIN} / {METRICS_END} markers"),
        });
        return out;
    };
    for (name, _, _) in &entries {
        if !rows.iter().any(|r| r == name) {
            out.push(Violation {
                file: "README.md".into(),
                line: 0,
                message: format!("exported metric {name} is missing from the README metrics table"),
            });
        }
    }
    for row in &rows {
        if !entries.iter().any(|(n, _, _)| n == row) {
            out.push(Violation {
                file: "README.md".into(),
                line: 0,
                message: format!("README metrics table documents {row}, which is not exported"),
            });
        }
    }
    out
}

/// Run every pass; the full violation list, stably ordered.
pub fn lint_all(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    out.extend(check_ordering_justified(root));
    out.extend(check_std_sync_ban(root));
    out.extend(check_panic_free_zone(root));
    out.extend(check_enum_coverage(root));
    out.extend(check_readme_orderings(root));
    out.extend(check_metrics_registry(root));
    out
}

//! `cargo xtask conn-smoke` — a many-connection pipelining smoke test.
//!
//! Spawns one real `peel-server` process and drives at least 512
//! concurrent client connections against it, every one of them
//! pipelining a burst of requests (all frames written before any
//! response is read). Asserts that every pipelined response arrives in
//! order, that the server's own connection gauge saw the full herd,
//! and — the regression this guards — that a `Shutdown` request makes
//! the process exit cleanly while hundreds of sockets are still open.
//! The server log lands in `target/conn-smoke/` and is kept on failure.

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use peel_service::wire::{
    decode_response, encode_request, read_frame, write_frame, Request, Response,
};
use peel_service::Client;

/// How many concurrent connections the smoke test holds open. CI
/// default fd limits are 1024; 512 sockets plus the harness's own fds
/// fit comfortably.
const CONNECTIONS: usize = 512;

/// Pipelined requests per connection (written back-to-back before the
/// first response is read).
const BURST: usize = 8;

/// Whole-scenario deadline; the happy path is a few seconds.
const DEADLINE: Duration = Duration::from_secs(120);

/// A child process killed (not waited politely) on drop, so an early
/// `?` return cannot leak a server into the CI job.
struct Node {
    child: Child,
}

impl Drop for Node {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Reserve an ephemeral loopback port by binding and dropping (same
/// trade-off as mesh-smoke: racy in principle, reliable on a CI box).
fn free_addr() -> Result<SocketAddr, String> {
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("cannot probe a free port: {e}"))?;
    listener
        .local_addr()
        .map_err(|e| format!("cannot read probed port: {e}"))
}

/// Run the scenario. `bin` is a built `peel-server`.
pub fn run(root: &Path, bin: &Path) -> Result<(), String> {
    let logdir = root.join("target").join("conn-smoke");
    std::fs::create_dir_all(&logdir).map_err(|e| format!("cannot create {logdir:?}: {e}"))?;
    let log = File::create(logdir.join("server.log"))
        .map_err(|e| format!("cannot create server.log: {e}"))?;
    let elog = log
        .try_clone()
        .map_err(|e| format!("cannot clone server.log handle: {e}"))?;

    let addr = free_addr()?;
    let deadline = Instant::now() + DEADLINE;
    let mut node = Node {
        child: Command::new(bin)
            .args([
                "--addr".to_string(),
                addr.to_string(),
                // Cap above the herd so nothing is refused, but low
                // enough that the cap path is honest config, not the
                // default.
                "--max-conns".to_string(),
                (CONNECTIONS + 64).to_string(),
                "--shards".to_string(),
                "2".to_string(),
                "--diff-budget".to_string(),
                "256".to_string(),
            ])
            .stdout(Stdio::from(log))
            .stderr(Stdio::from(elog))
            .spawn()
            .map_err(|e| format!("cannot spawn peel-server: {e}"))?,
    };

    // Wait for the listener.
    let mut probe = Client::connect_retry(addr, Duration::from_secs(10))
        .map_err(|e| format!("server never came up on {addr}: {e}"))?;
    probe
        .hello()
        .map_err(|e| format!("handshake failed: {e}"))?;

    // Open the herd. Every socket stays open until after the
    // shutdown is issued, so the server really holds CONNECTIONS + 1
    // live connections at once.
    let mut herd: Vec<TcpStream> = Vec::with_capacity(CONNECTIONS);
    for i in 0..CONNECTIONS {
        let s = TcpStream::connect(addr)
            .map_err(|e| format!("connection {i}/{CONNECTIONS} failed: {e}"))?;
        let _ = s.set_nodelay(true);
        herd.push(s);
    }

    // Pipeline a burst on every connection: write all BURST frames,
    // then read all BURST responses, asserting order and content.
    let stats_frame = encode_request(&Request::Stats);
    let hello_frame = encode_request(&Request::Hello);
    for (i, s) in herd.iter_mut().enumerate() {
        let mut w = BufWriter::new(s.try_clone().map_err(|e| format!("clone {i}: {e}"))?);
        for k in 0..BURST {
            let frame = if k % 2 == 0 {
                &hello_frame
            } else {
                &stats_frame
            };
            write_frame(&mut w, frame).map_err(|e| format!("conn {i} write {k}: {e}"))?;
        }
        w.flush().map_err(|e| format!("conn {i} flush: {e}"))?;
        for k in 0..BURST {
            let payload = read_frame(s)
                .map_err(|e| format!("conn {i} read {k}: {e}"))?
                .ok_or_else(|| format!("conn {i} closed before response {k}"))?;
            let resp = decode_response(&payload).map_err(|e| format!("conn {i} resp {k}: {e}"))?;
            let ok = match (k % 2, resp) {
                (0, Response::Hello(_)) => true,
                (1, Response::Stats(_)) => true,
                _ => false,
            };
            if !ok {
                return Err(format!(
                    "conn {i}: pipelined response {k} was the wrong variant — \
                     responses arrived out of order"
                ));
            }
        }
        if Instant::now() > deadline {
            return Err("deadline exceeded while driving the herd".into());
        }
    }

    // The server must have seen the whole herd live at once (the herd
    // plus the probe client).
    let snap = probe
        .stats()
        .map_err(|e| format!("stats after herd: {e}"))?;
    if (snap.connections.live as usize) < CONNECTIONS {
        return Err(format!(
            "server gauge saw only {} live connections, expected at least {CONNECTIONS}",
            snap.connections.live
        ));
    }
    if (snap.connections.accepted as usize) < CONNECTIONS + 1 {
        return Err(format!(
            "server counted only {} accepted connections, expected at least {}",
            snap.connections.accepted,
            CONNECTIONS + 1
        ));
    }

    // Shutdown with the herd still connected: the reactor must flush,
    // close every socket, and let the process exit — no stall waiting
    // for the herd to hang up first.
    probe
        .shutdown_server()
        .map_err(|e| format!("shutdown request: {e}"))?;
    let exit = loop {
        match node.child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) if Instant::now() > deadline => {
                return Err("server did not exit after Shutdown with the herd connected".into())
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(50)),
            Err(e) => return Err(format!("waiting for server exit: {e}")),
        }
    };
    if !exit.success() {
        return Err(format!("server exited uncleanly: {exit}"));
    }

    // Every herd socket must observe the close (read returns 0/err, not
    // a hang) — sample a few rather than serially timing out on all.
    for (i, s) in herd.iter_mut().enumerate().take(8) {
        s.set_read_timeout(Some(Duration::from_secs(5)))
            .map_err(|e| format!("conn {i} set timeout: {e}"))?;
        let mut buf = [0u8; 64];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue, // drained a leftover flushed frame
                Err(e) => return Err(format!("conn {i}: close not observed: {e}")),
            }
        }
    }

    println!(
        "conn-smoke: {CONNECTIONS} concurrent connections × {BURST} pipelined requests, \
         clean shutdown with the herd attached"
    );
    let _ = std::fs::remove_dir_all(&logdir);
    Ok(())
}

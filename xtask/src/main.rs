//! `cargo xtask <task>` — repo maintenance tasks.
//!
//! * `cargo xtask lint` — run the concurrency-invariant lint passes
//!   (see `xtask::lint_all` for the list); nonzero exit on violations.
//! * `cargo xtask lint --orderings` — print the generated per-site
//!   memory-orderings table.
//! * `cargo xtask lint --write-orderings` — rewrite the table in
//!   README.md between the `<!-- orderings:begin/end -->` markers.
//! * `cargo xtask mesh-smoke` — build `peel-server` and run the
//!   3-process replica-mesh failover smoke test (kill the primary
//!   mid-ingest; survivors must elect, converge, and serve reads).
//!   Child logs land in `target/mesh-smoke/` and are kept on failure.
//! * `cargo xtask conn-smoke` — build `peel-server` and drive 512
//!   concurrent pipelined client connections against it, asserting
//!   in-order pipelined responses, an honest live-connection gauge,
//!   and a clean process exit on `Shutdown` with the herd attached.
//!   The server log lands in `target/conn-smoke/`, kept on failure.

use std::path::PathBuf;
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    // xtask always lives one level below the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = repo_root();
    match args.first().map(String::as_str) {
        Some("lint") => {
            if args.iter().any(|a| a == "--orderings") {
                print!("{}", xtask::orderings_table(&root));
                return ExitCode::SUCCESS;
            }
            if args.iter().any(|a| a == "--write-orderings") {
                if let Err(e) = xtask::write_readme_orderings(&root) {
                    eprintln!("xtask: {e}");
                    return ExitCode::FAILURE;
                }
                println!("README.md orderings table rewritten");
                return ExitCode::SUCCESS;
            }
            let violations = xtask::lint_all(&root);
            for v in &violations {
                eprintln!("{v}");
            }
            if violations.is_empty() {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        Some("conn-smoke") => {
            let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
            let status = std::process::Command::new(&cargo)
                .args(["build", "-p", "peel-service", "--bin", "peel-server"])
                .current_dir(&root)
                .status();
            if !status.map(|s| s.success()).unwrap_or(false) {
                eprintln!("xtask conn-smoke: building peel-server failed");
                return ExitCode::FAILURE;
            }
            let bin = root.join("target").join("debug").join("peel-server");
            match xtask::conn_smoke::run(&root, &bin) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("{e}");
                    eprintln!("xtask conn-smoke: server log kept in target/conn-smoke/");
                    ExitCode::FAILURE
                }
            }
        }
        Some("mesh-smoke") => {
            // Build the server binary with the ambient cargo (the same
            // toolchain that is running this xtask).
            let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
            let status = std::process::Command::new(&cargo)
                .args(["build", "-p", "peel-service", "--bin", "peel-server"])
                .current_dir(&root)
                .status();
            if !status.map(|s| s.success()).unwrap_or(false) {
                eprintln!("xtask mesh-smoke: building peel-server failed");
                return ExitCode::FAILURE;
            }
            let bin = root.join("target").join("debug").join("peel-server");
            match xtask::mesh_smoke::run(&root, &bin) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("{e}");
                    eprintln!("xtask mesh-smoke: child logs kept in target/mesh-smoke/");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!(
                "usage: cargo xtask lint [--orderings | --write-orderings] | mesh-smoke | conn-smoke"
            );
            ExitCode::FAILURE
        }
    }
}

//! `cargo xtask mesh-smoke` — a 3-process replica-mesh smoke test.
//!
//! Spawns a real primary and two follower replicas as separate
//! `peel-server` processes wired over TCP, ingests a corpus, kills the
//! primary mid-ingest with a hard SIGKILL, and asserts the survivors
//! elect exactly one new leader, agree on a bumped epoch, converge
//! cell-identically, and serve mesh reads. Every child's stdout/stderr
//! is captured under `target/mesh-smoke/`; on failure the logs stay
//! behind as the CI artifact (mirroring the loom schedule uploads).

use std::fs::File;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use peel_service::{read_from_mesh, Client};

/// How long the whole scenario may take before we call it hung. CI
/// machines are slow; the happy path finishes in a few seconds.
const DEADLINE: Duration = Duration::from_secs(120);

/// A child process that is killed (not waited politely) on drop, so an
/// early `?` return cannot leak servers into the CI job.
struct Node {
    child: Child,
}

impl Drop for Node {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Reserve an ephemeral loopback port by binding and dropping. Racy in
/// principle; in a CI job that owns the machine it is reliable, and a
/// lost race fails loudly at spawn time.
fn free_addr() -> Result<SocketAddr, String> {
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("cannot probe a free port: {e}"))?;
    listener
        .local_addr()
        .map_err(|e| format!("cannot read probed port: {e}"))
}

fn spawn_node(
    bin: &Path,
    logdir: &Path,
    name: &'static str,
    args: &[String],
) -> Result<Node, String> {
    let log = File::create(logdir.join(format!("{name}.log")))
        .map_err(|e| format!("cannot create {name}.log: {e}"))?;
    let elog = log
        .try_clone()
        .map_err(|e| format!("cannot clone {name}.log handle: {e}"))?;
    let child = Command::new(bin)
        .args(args)
        .stdout(Stdio::from(log))
        .stderr(Stdio::from(elog))
        .spawn()
        .map_err(|e| format!("cannot spawn {name}: {e}"))?;
    Ok(Node { child })
}

fn await_cond(what: &str, mut cond: impl FnMut() -> bool) -> Result<(), String> {
    let end = Instant::now() + DEADLINE;
    while !cond() {
        if Instant::now() >= end {
            return Err(format!("mesh-smoke: {what} never held within {DEADLINE:?}"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    Ok(())
}

/// Deterministic distinct keys (multiplicative hash of the index).
fn keys(range: std::ops::Range<u64>, tag: u64) -> Vec<u64> {
    range
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag)
        .collect()
}

/// Run the scenario. `bin` is the prebuilt `peel-server`;
/// `root` locates `target/mesh-smoke/` for the logs.
pub fn run(root: &Path, bin: &Path) -> Result<(), String> {
    let logdir: PathBuf = root.join("target").join("mesh-smoke");
    std::fs::create_dir_all(&logdir).map_err(|e| format!("cannot create {logdir:?}: {e}"))?;

    let (pa, a1, a2) = (free_addr()?, free_addr()?, free_addr()?);
    let mut primary = spawn_node(
        bin,
        &logdir,
        "primary",
        &[
            "--addr".into(),
            pa.to_string(),
            "--node-id".into(),
            "0".into(),
            "--batch-size".into(),
            "64".into(),
        ],
    )?;
    let mut c = Client::connect_retry(pa, Duration::from_secs(30))
        .map_err(|e| format!("primary never came up: {e}"))?;

    let follower_args = |addr: SocketAddr, id: u64, peer: SocketAddr| -> Vec<String> {
        vec![
            "--addr".into(),
            addr.to_string(),
            "--follow".into(),
            pa.to_string(),
            "--node-id".into(),
            id.to_string(),
            "--mesh".into(),
            peer.to_string(),
            "--advertise".into(),
            addr.to_string(),
            "--anti-entropy-ms".into(),
            "50".into(),
        ]
    };
    let _f1 = spawn_node(bin, &logdir, "follower1", &follower_args(a1, 1, a2))?;
    let _f2 = spawn_node(bin, &logdir, "follower2", &follower_args(a2, 2, a1))?;
    let mut c1 = Client::connect_retry(a1, Duration::from_secs(30))
        .map_err(|e| format!("follower1 never came up: {e}"))?;
    let mut c2 = Client::connect_retry(a2, Duration::from_secs(30))
        .map_err(|e| format!("follower2 never came up: {e}"))?;

    // Phase 1: ingest and wait for both replicas to hold the primary's
    // exact cells.
    let phase1 = keys(0..2_000, 0x5e5e_0000_0000_0000);
    for chunk in phase1.chunks(250) {
        c.insert(chunk).map_err(|e| format!("ingest failed: {e}"))?;
    }
    c.flush().map_err(|e| format!("flush failed: {e}"))?;
    let shards = c.hello().map_err(|e| format!("hello failed: {e}"))?.shards;
    await_cond("phase-1 convergence", || {
        (0..shards).all(|s| match (c.digest(s), c1.digest(s), c2.digest(s)) {
            (Ok((_, p)), Ok((_, d1)), Ok((_, d2))) => p == d1 && p == d2,
            _ => false,
        })
    })?;

    // Phase 2: kill the primary mid-ingest — a hard kill, no goodbye.
    let killer = std::thread::spawn(move || {
        let mut cc = match Client::connect(pa) {
            Ok(c) => c,
            Err(_) => return,
        };
        for chunk in keys(0..1_000, 0x5e5f_0000_0000_0000).chunks(50) {
            if cc.insert(chunk).is_err() || cc.flush().is_err() {
                break; // died under us — that is the scenario
            }
        }
    });
    std::thread::sleep(Duration::from_millis(60));
    primary
        .child
        .kill()
        .map_err(|e| format!("cannot kill primary: {e}"))?;
    let _ = primary.child.wait();
    killer
        .join()
        .map_err(|_| "killer thread panicked".to_string())?;
    drop(c);

    // Survivors: exactly one leader, one bumped epoch, identical cells.
    await_cond("failover election", || {
        match (c1.replica_status(), c2.replica_status()) {
            (Ok(s1), Ok(s2)) => {
                u32::from(s1.leading) + u32::from(s2.leading) == 1
                    && s1.epoch == s2.epoch
                    && s1.epoch > 0
            }
            _ => false,
        }
    })?;
    await_cond("survivor convergence", || {
        (0..shards).all(|s| match (c1.digest(s), c2.digest(s)) {
            (Ok((_, d1)), Ok((_, d2))) => d1 == d2,
            _ => false,
        })
    })?;

    // Reads are served by the mesh for every shard.
    for shard in 0..shards {
        read_from_mesh(&[a1, a2], shard, 0, Duration::from_secs(5))
            .map_err(|e| format!("mesh read of shard {shard} failed: {e}"))?;
    }

    // Quiet success: remove the logs so only failures leave artifacts.
    for node in ["primary", "follower1", "follower2"] {
        let _ = std::fs::remove_file(logdir.join(format!("{node}.log")));
    }
    println!("mesh-smoke: survivors elected, converged, and serving reads");
    Ok(())
}

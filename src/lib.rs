//! # parallel-peeling — umbrella crate for the SPAA 2014 reproduction
//!
//! This crate re-exports the whole workspace so applications can depend on
//! a single crate:
//!
//! * [`graph`] — random hypergraph models and the CSR [`graph::Hypergraph`]
//!   (`peel-graph`).
//! * [`core`] — the peeling engines: sequential, parallel (dense/frontier),
//!   and subtable/subround (`peel-core`).
//! * [`analysis`] — thresholds `c*_{k,r}`, survival recurrences, round
//!   predictions (`peel-analysis`).
//! * [`iblt`] — Invertible Bloom Lookup Tables with parallel recovery
//!   (`peel-iblt`).
//! * [`codes`] — peeling-based systematic erasure codes (`peel-codes`).
//! * [`staticfn`] — XORSAT solving and Bloomier-style static functions
//!   (`peel-fn`).
//! * [`sat`] — the pure literal rule as parallel peeling (`peel-sat`).
//! * [`service`] — sharded, batched set-reconciliation service over TCP,
//!   with primary→follower replication healed by IBLT anti-entropy
//!   (`peel-service`).
//!
//! See the repository README for the architecture overview, DESIGN.md for
//! the paper-to-module map, and EXPERIMENTS.md for reproduction results.
//!
//! ## Quickstart
//!
//! ```
//! use parallel_peeling::analysis::c_star;
//! use parallel_peeling::core::{peel_parallel, ParallelOpts};
//! use parallel_peeling::graph::models::Gnm;
//! use parallel_peeling::graph::rng::SplitMix64;
//!
//! // Edge density 0.70 is below c*_{2,4} ≈ 0.772, so the 2-core is empty
//! // w.h.p. and parallel peeling finishes in ~log log n rounds.
//! assert!(0.70 < c_star(2, 4).unwrap());
//! let g = Gnm::new(50_000, 0.70, 4).sample(&mut SplitMix64::new(1));
//! let out = peel_parallel(&g, 2, &ParallelOpts::default());
//! assert!(out.success());
//! ```

#![warn(missing_docs)]

/// Threshold and recurrence theory (`peel-analysis`).
pub use peel_analysis as analysis;
/// Erasure codes (`peel-codes`).
pub use peel_codes as codes;
/// Peeling engines (`peel-core`).
pub use peel_core as core;
/// Static functions and XORSAT (`peel-fn`).
pub use peel_fn as staticfn;
/// Hypergraph substrate (`peel-graph`).
pub use peel_graph as graph;
/// Invertible Bloom Lookup Tables (`peel-iblt`).
pub use peel_iblt as iblt;
/// Pure literal rule (`peel-sat`).
pub use peel_sat as sat;
/// Sharded, batched, replicated set-reconciliation service
/// (`peel-service`).
pub use peel_service as service;

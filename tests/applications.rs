//! Integration tests across the application crates: the same peeling theory
//! governs IBLTs, erasure codes, static functions, and the pure literal
//! rule.

use parallel_peeling::analysis::{c_star, predicted_subrounds_below, SubtableRecurrence};
use parallel_peeling::codes::{PeelingCode, Symbol};
use parallel_peeling::graph::rng::Xoshiro256StarStar;
use parallel_peeling::iblt::{reconcile, AtomicIblt, Iblt, IbltConfig};
use parallel_peeling::staticfn::{BuildOptions, StaticFunction};
use rand::RngCore;

/// IBLT recovery subrounds match the Appendix-B recurrence prediction.
#[test]
fn iblt_subrounds_match_subtable_recurrence() {
    let (r, load) = (4usize, 0.70f64);
    let cfg = IbltConfig::with_total_cells(r, 120_000, 9);
    let items = (load * cfg.total_cells() as f64) as usize;
    let mut rng = Xoshiro256StarStar::new(31);
    let keys: Vec<u64> = (0..items).map(|_| rng.next_u64()).collect();
    let t = AtomicIblt::new(cfg);
    t.par_insert(&keys);
    let out = t.par_recover();
    assert!(out.complete);

    let predicted = SubtableRecurrence::new(2, r as u32, load)
        .subrounds_to_empty(cfg.total_cells() as u64, 500)
        .unwrap();
    // Accounting note: the recurrence predicts when the last *vertex* is
    // peeled, but IBLT recovery stops when the last *key* (edge) is
    // extracted; newly empty (degree-0) cells peel up to ~r subrounds after
    // the last key, so the key-accounted measurement runs a few subrounds
    // shorter.
    let diff = predicted as i64 - out.subrounds as i64;
    assert!(
        (-2..=(r as i64 + 2)).contains(&diff),
        "measured {} vs recurrence {predicted} subrounds",
        out.subrounds
    );
    // And the closed-form Theorem 7 leading term is in the same ballpark.
    let closed_form = predicted_subrounds_below(2, r as u32, cfg.total_cells() as f64);
    assert!(
        (out.subrounds as f64) < closed_form * 20.0,
        "sanity: measured {} ≪ huge multiple of leading term {closed_form:.1}",
        out.subrounds
    );
}

/// The IBLT decodes iff the load is below c*_{2,r} — the same threshold
/// that rules the erasure code and the static function.
#[test]
fn one_threshold_rules_all_applications() {
    let r = 3usize;
    let threshold = c_star(2, r as u32).unwrap(); // ≈ 0.818
    let below = threshold - 0.06;
    let above = threshold + 0.06;

    // IBLT.
    let cfg = IbltConfig::with_total_cells(r, 30_000, 1);
    for (load, expect) in [(below, true), (above, false)] {
        let items = (load * cfg.total_cells() as f64) as usize;
        let mut rng = Xoshiro256StarStar::new(2);
        let t = AtomicIblt::new(cfg);
        let keys: Vec<u64> = (0..items).map(|_| rng.next_u64()).collect();
        t.par_insert(&keys);
        assert_eq!(t.par_recover().complete, expect, "IBLT at load {load}");
    }

    // Erasure code: erased-symbol / check-cell ratio plays the role of load.
    let code = PeelingCode::new(30_000, 30_000, r, 3);
    let message: Vec<u64> = (0..30_000u64).collect();
    let checks = code.encode(&message);
    let rx_checks: Vec<Symbol> = checks.iter().map(|&c| Some(c)).collect();
    for (load, expect) in [(below, true), (above, false)] {
        let erased = (load * code.check_cells() as f64) as usize;
        let mut rx: Vec<Symbol> = message.iter().map(|&s| Some(s)).collect();
        for slot in rx.iter_mut().take(erased) {
            *slot = None;
        }
        let out = code.par_decode(&mut rx, &rx_checks);
        assert_eq!(out.complete, expect, "code at load {load}");
    }

    // Static function: cells_per_key = 1/load.
    let keys: Vec<u64> = (0..20_000u64).map(|i| i * 7 + 1).collect();
    let values: Vec<u64> = keys.iter().map(|&k| k ^ 0xdead).collect();
    for (load, expect) in [(below, true), (above, false)] {
        let opts = BuildOptions {
            hashes: r,
            cells_per_key: 1.0 / load,
            max_attempts: 3,
            ..Default::default()
        };
        let got = StaticFunction::build(&keys, &values, &opts);
        assert_eq!(got.is_ok(), expect, "staticfn at load {load}");
    }
}

/// End-to-end "what's the difference" workflow across serial/parallel IBLT
/// representations.
#[test]
fn reconciliation_roundtrip_through_parallel_tables() {
    let cfg = IbltConfig::for_load(4, 128, 0.6, 77);
    let shared: Vec<u64> = (0..50_000u64).map(|i| i * 3).collect();

    // Build both sides in parallel, convert to serial for "the wire".
    let a = AtomicIblt::new(cfg);
    a.par_insert(&shared);
    a.insert(0xaaaa_0001);
    a.insert(0xaaaa_0002);
    let b = AtomicIblt::new(cfg);
    b.par_insert(&shared);
    b.insert(0xbbbb_0001);

    let diff = reconcile(&a.to_serial(), &b.to_serial());
    assert!(diff.complete);
    assert_eq!(diff.only_in_a, vec![0xaaaa_0001, 0xaaaa_0002]);
    assert_eq!(diff.only_in_b, vec![0xbbbb_0001]);
}

/// Codes and IBLT agree on recovery fraction above the threshold: both are
/// governed by the same 2-core size.
#[test]
fn partial_recovery_fractions_are_consistent() {
    let r = 4usize;
    let load = 0.83f64;
    let n_cells = 40_000usize;

    // IBLT % recovered at load 0.83 (paper Table 4: ≈ 24.6%).
    let cfg = IbltConfig::with_total_cells(r, n_cells, 5);
    let items = (load * cfg.total_cells() as f64) as usize;
    let mut rng = Xoshiro256StarStar::new(6);
    let keys: Vec<u64> = (0..items).map(|_| rng.next_u64()).collect();
    let t = AtomicIblt::new(cfg);
    t.par_insert(&keys);
    let out = t.par_recover();
    assert!(!out.complete);
    let iblt_frac = out.positive.len() as f64 / items as f64;
    assert!(
        (iblt_frac - 0.246).abs() < 0.04,
        "IBLT recovered fraction {iblt_frac} (paper: ≈0.246)"
    );

    // Erasure code at the same effective load recovers a similar fraction.
    let code = PeelingCode::new(items, n_cells, r, 7);
    let message: Vec<u64> = (0..items as u64).collect();
    let checks = code.encode(&message);
    let mut rx: Vec<Symbol> = vec![None; items]; // erase everything
    let rx_checks: Vec<Symbol> = checks.iter().map(|&c| Some(c)).collect();
    let dec = code.par_decode(&mut rx, &rx_checks);
    assert!(!dec.complete);
    let code_frac = dec.recovered as f64 / items as f64;
    assert!(
        (code_frac - iblt_frac).abs() < 0.05,
        "code fraction {code_frac} vs IBLT fraction {iblt_frac}"
    );
}

/// Serial and parallel recovery find the same keys even under duplicate
/// inserts and interleaved deletes (failure-injection style).
#[test]
fn recovery_robust_to_messy_update_sequences() {
    let cfg = IbltConfig::for_load(3, 500, 0.5, 13);
    let mut serial = Iblt::new(cfg);
    let atomic = AtomicIblt::new(cfg);

    // Messy sequence: inserts, duplicate inserts, deletes of absent keys.
    let mut expect_positive: Vec<u64> = Vec::new();
    let mut expect_negative: Vec<u64> = Vec::new();
    for i in 0..200u64 {
        serial.insert(i);
        atomic.insert(i);
        expect_positive.push(i);
    }
    for i in 500..520u64 {
        serial.delete(i);
        atomic.delete(i);
        expect_negative.push(i);
    }
    // insert+delete pairs cancel.
    for i in 900..950u64 {
        serial.insert(i);
        serial.delete(i);
        atomic.insert(i);
        atomic.delete(i);
    }

    let s = serial.recover();
    let p = atomic.par_recover();
    for out in [(s.positive, s.negative), (p.positive, p.negative)] {
        let (mut pos, mut neg) = out;
        pos.sort_unstable();
        neg.sort_unstable();
        assert_eq!(pos, expect_positive);
        assert_eq!(neg, expect_negative);
    }
}

//! Coordinator crash mid-reshard, end to end over TCP: a client drives
//! `ReshardBegin` (migration live, dual-apply on) and dies before
//! committing, while barrier-synchronized racing ingest keeps landing on
//! the server — the discipline of `tests/replication_recovery.rs`. A
//! restarted coordinator must be able to either **resume** (commit the
//! in-flight migration) or **cleanly abort** (`ReshardAbort`), and in
//! both cases every key must be present exactly once: nothing lost,
//! nothing double-counted.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use parallel_peeling::service::service::PeelService;
use parallel_peeling::service::{Client, Follower, FollowerConfig, Server, ServiceConfig};

fn keys(range: std::ops::Range<u64>, tag: u64) -> Vec<u64> {
    range
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag)
        .collect()
}

fn cfg() -> ServiceConfig {
    ServiceConfig {
        batch_size: 64,
        queue_depth: 16,
        workers: 2,
        // The reshard decodes whole shards: budget for the resident set.
        ..ServiceConfig::for_diff_budget(1, 4_000)
    }
}

/// Ingest `phase1`, crash a coordinator right after `ReshardBegin(4)`
/// with `phase2` racing in on another connection, and return a fresh
/// "restarted coordinator" client plus the expected key set.
fn crash_mid_reshard(server: &Server) -> (Client, Vec<u64>) {
    let addr = server.local_addr();
    let mut ingest = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
    let phase1 = keys(0..700, 0x1111_0000_0000_0000);
    ingest.insert(&phase1).unwrap();
    ingest.flush().unwrap();

    // The coordinator begins the migration… and dies. The barrier aligns
    // the crash with an ingest burst so ops are genuinely racing the
    // dual-apply window.
    let phase2 = Arc::new(keys(0..500, 0x2222_0000_0000_0000));
    let start = Arc::new(Barrier::new(2));
    let ingester = {
        let phase2 = Arc::clone(&phase2);
        let start = Arc::clone(&start);
        std::thread::spawn(move || {
            let mut c2 = Client::connect(addr).unwrap();
            start.wait();
            for chunk in phase2.chunks(20) {
                c2.insert(chunk).unwrap();
            }
            c2.flush().unwrap();
        })
    };
    {
        let mut coordinator = Client::connect(addr).unwrap();
        start.wait();
        let status = coordinator.reshard_begin(4).unwrap();
        assert!(status.resharding);
        assert_eq!(status.to_shards, 4);
        // Crash: the connection drops with the migration in flight.
        drop(coordinator);
    }
    ingester.join().unwrap();

    // Restart: a new coordinator discovers the in-flight migration from
    // the stats it can read over any connection.
    let mut restarted = Client::connect(addr).unwrap();
    let stats = restarted.stats().unwrap();
    assert!(stats.reshard.resharding, "migration must survive the crash");
    assert_eq!(stats.reshard.serving_shards, 1);
    assert_eq!(stats.reshard.to_shards, 4);

    let mut want: Vec<u64> = phase1.iter().chain(phase2.iter()).copied().collect();
    want.sort_unstable();
    (restarted, want)
}

/// Every key present exactly once: the reconcile of the exact expected
/// set is empty both ways, and the decoded shard contents equal the set
/// (an IBLT cell with count 2 would fail the decode or surface a
/// duplicate key — either trips an assert).
fn assert_exact_content(c: &mut Client, want: &[u64], shards: u32) {
    let hello = c.refresh_hello().unwrap();
    assert_eq!(hello.shards, shards);
    let diff = c.reconcile(want).unwrap();
    assert!(diff.complete, "reconcile did not decode");
    assert!(diff.only_server.is_empty(), "keys double-counted or stray");
    assert!(diff.only_client.is_empty(), "keys lost");
    let mut content = Vec::new();
    for shard in 0..shards {
        let (_e, iblt) = c.digest(shard).unwrap();
        let rec = iblt.recover();
        assert!(rec.complete, "shard {shard} undecodable");
        assert!(rec.negative.is_empty(), "shard {shard} phantom deletes");
        content.extend(rec.positive);
    }
    content.sort_unstable();
    assert_eq!(content, want, "content mismatch");
}

#[test]
fn restarted_coordinator_resumes_the_migration() {
    let server = Server::bind("127.0.0.1:0", cfg()).unwrap();
    let (mut c, want) = crash_mid_reshard(&server);
    // Resume: commit the crashed coordinator's migration.
    let status = c.reshard_commit().unwrap();
    assert!(!status.resharding);
    assert_eq!(status.serving_shards, 4);
    assert_eq!(status.completed, 1);
    assert_exact_content(&mut c, &want, 4);
}

/// A primary reshards while a follower is attached: the follower's
/// anti-entropy loop notices the changed handshake, reshards its local
/// service to the primary's new generation, and converges to
/// cell-identical shard digests at the new count — the replication layer
/// is generation-aware end to end.
#[test]
fn follower_adopts_a_resharded_primary() {
    let c2 = ServiceConfig { shards: 2, ..cfg() };
    let primary = Server::bind("127.0.0.1:0", c2).unwrap();
    let fsvc = Arc::new(PeelService::start(c2));
    let mut follower = Follower::start(
        Arc::clone(&fsvc),
        primary.local_addr(),
        FollowerConfig {
            anti_entropy_interval: Duration::from_millis(50),
            reconnect_backoff: Duration::from_millis(25),
            ..FollowerConfig::default()
        },
    );
    let mut c = Client::connect_retry(primary.local_addr(), Duration::from_secs(5)).unwrap();
    let ks = keys(0..1_000, 0x4444_0000_0000_0000);
    c.insert(&ks).unwrap();
    c.flush().unwrap();

    // Reshard the primary 2 → 4 while the follower is live.
    let status = c.reshard(4).unwrap();
    assert_eq!(status.serving_shards, 4);

    // The follower adopts the new generation and converges.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let adopted = fsvc.shards() == 4
            && (0..4u32).all(|shard| {
                let (_e, p) = primary.service().snapshot_shard(shard).unwrap();
                let (_e, f) = fsvc.snapshot_shard(shard).unwrap();
                p == f
            });
        if adopted {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "follower never adopted the new generation (at {} shards)",
            fsvc.shards()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(fsvc.generation(), 1);
    assert!(fsvc.metrics().reshard.completed >= 1);
    follower.stop();
}

#[test]
fn restarted_coordinator_aborts_cleanly() {
    let server = Server::bind("127.0.0.1:0", cfg()).unwrap();
    let (mut c, want) = crash_mid_reshard(&server);
    // Abort: the old single-shard generation stayed authoritative under
    // dual-apply, so nothing is lost or double-counted.
    let status = c.reshard_abort().unwrap();
    assert!(!status.resharding);
    assert_eq!(status.serving_shards, 1);
    assert_eq!(status.aborted, 1);
    assert_exact_content(&mut c, &want, 1);
    // The service is fully usable: a later full reshard still works.
    let status = c.reshard(2).unwrap();
    assert_eq!(status.serving_shards, 2);
    assert_exact_content(&mut c, &want, 2);
}

//! Integration tests tying `peel-analysis` (theory) to `peel-graph` +
//! `peel-core` (simulation): the paper's central claim that the idealized
//! recurrences predict the real peeling process.

use parallel_peeling::analysis::{c_star, Idealized, SubtableRecurrence};
use parallel_peeling::core::{peel_parallel, peel_subtables, ParallelOpts, SubtableOpts};
use parallel_peeling::graph::models::{Gnm, Partitioned};
use parallel_peeling::graph::rng::Xoshiro256StarStar;

const N: usize = 120_000;

/// Table 2's phenomenon: measured survivors track λ_t·n within sampling
/// error, below the threshold.
#[test]
fn recurrence_predicts_survivors_below_threshold() {
    let (k, r, c) = (2u32, 4usize, 0.70);
    let g = Gnm::new(N, c, r).sample(&mut Xoshiro256StarStar::new(1));
    let out = peel_parallel(&g, k, &ParallelOpts::default());
    assert!(out.success());
    let preds = Idealized::new(k, r as u32, c).survivor_predictions(N as u64, out.rounds);
    for (stats, pred) in out.trace.iter().zip(preds) {
        // Generous tolerance: fluctuation scale is ~sqrt(n) ≈ 350, plus the
        // late rounds where counts are tiny.
        let tol = 6.0 * (N as f64).sqrt() + 0.05 * pred;
        assert!(
            (stats.unpeeled_vertices as f64 - pred).abs() < tol,
            "round {}: measured {} vs predicted {pred:.0}",
            stats.round,
            stats.unpeeled_vertices
        );
    }
}

/// Above the threshold, the measured core matches the fixed-point λ·n.
#[test]
fn recurrence_predicts_core_above_threshold() {
    let (k, r, c) = (2u32, 4usize, 0.85);
    let g = Gnm::new(N, c, r).sample(&mut Xoshiro256StarStar::new(2));
    let out = peel_parallel(&g, k, &ParallelOpts::default());
    assert!(!out.success());
    let predicted =
        parallel_peeling::analysis::fixedpoint::core_size_prediction(k, r as u32, c, N as u64);
    let tol = 8.0 * (N as f64).sqrt();
    assert!(
        (out.core_vertices as f64 - predicted).abs() < tol,
        "core {} vs predicted {predicted:.0}",
        out.core_vertices
    );
}

/// Table 6's phenomenon: the subtable recurrence predicts per-subround
/// survivors on partitioned graphs.
#[test]
fn subtable_recurrence_predicts_survivors() {
    let (k, r, c) = (2u32, 4usize, 0.70);
    let g = Partitioned::new(N, c, r).sample(&mut Xoshiro256StarStar::new(3));
    let out = peel_subtables(&g, k, &SubtableOpts::default());
    assert!(out.success());
    let steps = SubtableRecurrence::new(k, r as u32, c).steps(out.rounds);
    for stats in &out.trace {
        let step = &steps[(stats.subround - 1) as usize];
        let pred = step.lambda_prime * N as f64;
        let tol = 6.0 * (N as f64).sqrt() + 0.05 * pred;
        assert!(
            (stats.unpeeled_vertices as f64 - pred).abs() < tol,
            "subround {}: measured {} vs predicted {pred:.0}",
            stats.subround,
            stats.unpeeled_vertices
        );
    }
}

/// The threshold itself separates success from failure at moderate n.
#[test]
fn threshold_separates_success_and_failure() {
    let threshold = c_star(2, 4).unwrap();
    for (c, expect_success) in [(threshold - 0.05, true), (threshold + 0.05, false)] {
        let g = Gnm::new(60_000, c, 4).sample(&mut Xoshiro256StarStar::new(4));
        let out = peel_parallel(&g, 2, &ParallelOpts::default());
        assert_eq!(
            out.success(),
            expect_success,
            "c = {c} vs threshold {threshold}"
        );
    }
}

/// Round growth: below threshold rounds barely move with n; above threshold
/// they grow roughly linearly in log n (Theorems 1 and 3).
#[test]
fn round_scaling_below_vs_above() {
    let sizes = [20_000usize, 80_000, 320_000];
    let mut below = Vec::new();
    let mut above = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let g = Gnm::new(n, 0.70, 4).sample(&mut Xoshiro256StarStar::new(10 + i as u64));
        below.push(peel_parallel(&g, 2, &ParallelOpts::default()).rounds as f64);
        let g = Gnm::new(n, 0.85, 4).sample(&mut Xoshiro256StarStar::new(20 + i as u64));
        above.push(peel_parallel(&g, 2, &ParallelOpts::default()).rounds as f64);
    }
    // 16x growth in n: below-threshold rounds move by at most ~2;
    // above-threshold rounds increase by at least ~2 (≈1 per doubling of
    // log n per Table 1).
    assert!(
        below[2] - below[0] <= 2.0,
        "below threshold rounds grew too fast: {below:?}"
    );
    assert!(
        above[2] - above[0] >= 2.0,
        "above threshold rounds should grow with log n: {above:?}"
    );
}

/// Above the threshold the 2-core residue is one giant connected component
/// (Section 4's regime); extract it with the components utility and check.
#[test]
fn core_residue_is_a_giant_component() {
    use parallel_peeling::graph::{edge_subgraph, Components};
    let g = Gnm::new(60_000, 0.85, 4).sample(&mut Xoshiro256StarStar::new(77));
    let out = peel_parallel(&g, 2, &ParallelOpts::default());
    assert!(!out.success());
    let core = edge_subgraph(&g, |e| {
        out.edge_kill_round[e as usize] == parallel_peeling::core::UNPEELED
    });
    assert_eq!(core.num_edges() as u64, out.core_edges);
    let comps = Components::compute(&core);
    // The giant component holds (almost) all core vertices.
    assert!(
        comps.largest() as f64 > 0.99 * out.core_vertices as f64,
        "largest component {} vs core {}",
        comps.largest(),
        out.core_vertices
    );
}

/// The branching-process Monte Carlo simulator (independent implementation)
/// agrees with the closed-form recurrence.
#[test]
fn branching_process_validates_recurrence() {
    use parallel_peeling::graph::branching::BranchingProcess;
    let (k, r, c) = (2u32, 4u32, 0.70);
    let lambda = Idealized::new(k, r, c).lambda_series(4);
    let bp = BranchingProcess::new(k, r, c);
    let mut rng = Xoshiro256StarStar::new(5);
    for (t, &lam) in lambda.iter().enumerate() {
        let est = bp.estimate_lambda(&mut rng, t as u32 + 1, 40_000);
        assert!(
            (est - lam).abs() < 0.015,
            "λ_{}: Monte Carlo {est} vs recurrence {lam}",
            t + 1
        );
    }
}

//! Round-synchronous engine agreement (ISSUE 1 satellite; extended with
//! the direction-optimizing engine in ISSUE 4).
//!
//! The paper's analysis is about one process — synchronous round peeling —
//! and this workspace ships four engines claiming to implement it:
//! `peel_rounds_serial`, the dense parallel scan, the work-efficient
//! frontier engine, and the adaptive (direction-optimizing) engine. On any
//! fixed graph all four must therefore produce *identical* per-round peel
//! counts (vertices and edges per round) and the same final k-core, both
//! below the threshold `c*_{2,4} ≈ 0.772` (empty 2-core, ~log log n
//! rounds) and above it (large 2-core survives).

use parallel_peeling::analysis::c_star;
use parallel_peeling::core::{peel_parallel, peel_rounds_serial, ParallelOpts, Strategy};
use parallel_peeling::graph::models::Gnm;
use parallel_peeling::graph::rng::SplitMix64;
use parallel_peeling::graph::Hypergraph;

const N: usize = 40_000;
const R: usize = 4;
const K: u32 = 2;
const SEED: u64 = 0xA5EED;

fn instance(c: f64) -> Hypergraph {
    Gnm::new(N, c, R).sample(&mut SplitMix64::new(SEED))
}

/// Per-round peels as `(round, count)` pairs.
type RoundSeries = Vec<(u32, u64)>;

/// (per-round vertex peels, per-round edge peels, sorted core vertices).
fn summary(out: &parallel_peeling::core::PeelOutcome) -> (RoundSeries, RoundSeries, Vec<u32>) {
    let vertices = out
        .trace
        .iter()
        .map(|s| (s.round, s.peeled_vertices))
        .collect();
    let edges = out
        .trace
        .iter()
        .map(|s| (s.round, s.peeled_edges))
        .collect();
    (vertices, edges, out.core_vertex_ids())
}

fn assert_engines_agree(g: &Hypergraph, expect_empty_core: bool) {
    let serial = peel_rounds_serial(g, K);
    let s = summary(&serial);

    for strategy in [Strategy::Dense, Strategy::Frontier, Strategy::Adaptive] {
        let out = peel_parallel(
            g,
            K,
            &ParallelOpts {
                strategy,
                ..Default::default()
            },
        );
        let p = summary(&out);
        assert_eq!(
            s.0, p.0,
            "serial vs {strategy:?} per-round vertex peels differ"
        );
        assert_eq!(
            s.1, p.1,
            "serial vs {strategy:?} per-round edge peels differ"
        );
        assert_eq!(s.2, p.2, "serial vs {strategy:?} final core differs");
        assert_eq!(serial.rounds, out.rounds, "{strategy:?}");
    }

    assert_eq!(
        serial.success(),
        expect_empty_core,
        "unexpected core outcome: {} core vertices at this density",
        serial.core_vertices
    );
}

#[test]
fn engines_agree_below_threshold() {
    let c = 0.70;
    assert!(c < c_star(K, R as u32).unwrap());
    assert_engines_agree(&instance(c), true);
}

#[test]
fn engines_agree_above_threshold() {
    let c = 0.85;
    assert!(c > c_star(K, R as u32).unwrap());
    assert_engines_agree(&instance(c), false);
}

#[test]
fn engines_agree_under_multithreaded_pool() {
    // Force a >1 worker pool so the parallel engines' atomic claiming runs
    // genuinely concurrently even on single-core CI machines; round
    // semantics must be unaffected by the worker count.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    pool.install(|| {
        assert_engines_agree(&instance(0.70), true);
        assert_engines_agree(&instance(0.85), false);
    });
}

//! Follower crash/restart recovery, end to end over TCP: a follower is
//! killed mid-stream, restarted *empty*, and anti-entropy must repair
//! the full divergence (≈1.2×10³ keys — everything the primary holds)
//! while barrier-synchronized racing ingest keeps landing on the
//! primary, exactly the discipline of `tests/service_reconcile.rs`.

// ordering: the ingest-done flag is Relaxed — the writer is joined before
// the flag is read, and the join carries the happens-before. Downgraded
// from SeqCst in the PR-6 ordering audit; no decision rode on the total
// order.
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use parallel_peeling::service::service::PeelService;
use parallel_peeling::service::{Client, Follower, FollowerConfig, Server, ServiceConfig};

/// Deterministic distinct keys (multiplicative hash of the index).
fn keys(range: std::ops::Range<u64>, tag: u64) -> Vec<u64> {
    range
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag)
        .collect()
}

fn fast_follower() -> FollowerConfig {
    FollowerConfig {
        anti_entropy_interval: Duration::from_millis(50),
        reconnect_backoff: Duration::from_millis(25),
        ..FollowerConfig::default()
    }
}

/// True iff every shard's cells match between the primary (read over
/// the wire) and the follower service (read in-process).
fn converged(c: &mut Client, follower: &PeelService) -> bool {
    (0..follower.config().shards).all(|shard| {
        let (_e, p) = c.digest(shard).expect("primary digest");
        let (_e, f) = follower.snapshot_shard(shard).expect("follower digest");
        p == f
    })
}

fn await_convergence(c: &mut Client, follower: &PeelService, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !converged(c, follower) {
        assert!(
            Instant::now() < deadline,
            "{what}: follower never converged"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn follower_crash_restart_is_repaired_by_anti_entropy() {
    // Tables budgeted for ~4000 differing keys per reconcile round —
    // enough to decode the full post-crash divergence in one pass.
    let cfg = ServiceConfig {
        batch_size: 64,
        queue_depth: 16,
        workers: 2,
        ..ServiceConfig::for_diff_budget(4, 4_000)
    };
    let primary = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = primary.local_addr();
    let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();

    // Phase 1: a live follower replicates the first 700 keys.
    let phase1 = keys(0..700, 0x1111_0000_0000_0000);
    let f1svc = Arc::new(PeelService::start(cfg));
    let mut f1 = Follower::start(Arc::clone(&f1svc), addr, fast_follower());
    c.insert(&phase1).unwrap();
    c.flush().unwrap();
    await_convergence(&mut c, &f1svc, "phase 1");

    // Phase 2: kill the follower mid-stream while a racing ingester
    // keeps streaming 500 more keys into the primary. The barrier
    // aligns the crash with the ingest burst so frames are genuinely
    // in flight when the follower dies.
    let phase2 = Arc::new(keys(0..500, 0x2222_0000_0000_0000));
    let start = Arc::new(Barrier::new(2));
    let done = Arc::new(AtomicBool::new(false));
    let ingester = {
        let phase2 = Arc::clone(&phase2);
        let start = Arc::clone(&start);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut c2 = Client::connect(addr).unwrap();
            start.wait();
            for chunk in phase2.chunks(20) {
                c2.insert(chunk).unwrap();
                c2.flush().unwrap();
            }
            done.store(true, Relaxed);
        })
    };
    start.wait();
    f1.stop();
    drop(f1);
    drop(f1svc); // the follower's state dies with it
    ingester.join().unwrap();
    assert!(done.load(Relaxed));

    // Phase 3: restart the follower EMPTY. Its divergence is now the
    // primary's entire 1 200-key content — the stream can only deliver
    // batches sealed from now on, so anti-entropy must repair all of
    // it, and it must do so while yet another racing ingester keeps the
    // primary moving.
    let f2svc = Arc::new(PeelService::start(cfg));
    let mut f2 = Follower::start(Arc::clone(&f2svc), addr, fast_follower());
    let phase3 = Arc::new(keys(0..300, 0x3333_0000_0000_0000));
    let start3 = Arc::new(Barrier::new(2));
    let ingester3 = {
        let phase3 = Arc::clone(&phase3);
        let start3 = Arc::clone(&start3);
        std::thread::spawn(move || {
            let mut c3 = Client::connect(addr).unwrap();
            start3.wait();
            for chunk in phase3.chunks(15) {
                c3.insert(chunk).unwrap();
                c3.flush().unwrap();
            }
        })
    };
    start3.wait();
    ingester3.join().unwrap();
    await_convergence(&mut c, &f2svc, "post-restart");

    // Converged follower serves exactly the primary's content: all
    // three phases, fully decodable from its own shards.
    let mut content = Vec::new();
    for shard in 0..cfg.shards {
        let (_e, snap) = f2svc.snapshot_shard(shard).unwrap();
        let rec = snap.recover();
        assert!(rec.complete, "follower shard {shard} undecodable");
        assert!(rec.negative.is_empty());
        content.extend(rec.positive);
    }
    content.sort_unstable();
    let mut want: Vec<u64> = phase1
        .iter()
        .chain(phase2.iter())
        .chain(phase3.iter())
        .copied()
        .collect();
    want.sort_unstable();
    assert_eq!(want.len(), 1_500);
    assert_eq!(content, want, "follower content != primary content");

    // The repair path did real work: the restarted follower healed at
    // least the 1 200 keys it missed while dead.
    let fm = f2svc.metrics();
    assert!(
        fm.replication.anti_entropy_keys >= 1_200,
        "anti-entropy healed only {} keys",
        fm.replication.anti_entropy_keys
    );
    assert!(fm.replication.anti_entropy_rounds > 0);
    f2.stop();
}

//! The PR's acceptance scenario, end to end: a server + client pair
//! reconciles a 10⁵-key symmetric difference of ≤ 10³ keys over loopback
//! TCP across 4 shards, with ingest continuing during recovery.

use std::sync::Arc;
use std::time::Duration;

use parallel_peeling::service::{Client, Server, ServiceConfig};

/// Deterministic distinct keys (multiplicative hash of the index).
fn keys(range: std::ops::Range<u64>, tag: u64) -> Vec<u64> {
    range
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag)
        .collect()
}

#[test]
fn reconcile_100k_keys_diff_1000_over_tcp_with_live_ingest() {
    // 4 shards, tables sized for a symmetric difference of ~1500 keys
    // (the 10³ planned differences plus racing-ingest headroom).
    let cfg = ServiceConfig {
        batch_size: 512,
        queue_depth: 16,
        workers: 2,
        ..ServiceConfig::for_diff_budget(4, 1_500)
    };
    assert!(cfg.shards >= 4);
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();

    // 10⁵ keys on each side: 99 500 shared, 500 unique per side
    // (symmetric difference = 1000 = the 10³ budget).
    let shared = keys(0..99_500, 0x0);
    let server_only = keys(0..500, 0xA5A5_0000_0000_0000);
    let client_only = keys(0..500, 0xC3C3_0000_0000_0000);
    let mut server_set = shared.clone();
    server_set.extend(&server_only);
    let mut client_set = shared;
    client_set.extend(&client_only);
    assert_eq!(server_set.len(), 100_000);
    assert_eq!(client_set.len(), 100_000);

    // Seed the server over the wire.
    let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
    for chunk in server_set.chunks(8_192) {
        assert_eq!(c.insert(chunk).unwrap(), chunk.len() as u64);
    }
    c.flush().unwrap();

    // Racing ingest: a second connection streams fresh keys while the
    // main connection runs reconciliations back to back. A barrier
    // aligns the two streams' start, and the main loop keeps the
    // recovery scheduler busy until the ingester reports done — so the
    // ingester's insert+flush round trips execute while recoveries are
    // continuously in flight (the property under test: a snapshot gates
    // ingest only for its cell copy, recovery itself blocks nothing).
    let racing = Arc::new(keys(0..200, 0xFACE_0000_0000_0000));
    let start = Arc::new(std::sync::Barrier::new(2));
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let ingester = {
        let racing = Arc::clone(&racing);
        let start = Arc::clone(&start);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut c2 = Client::connect(addr).unwrap();
            start.wait();
            for chunk in racing.chunks(5) {
                c2.insert(chunk).unwrap();
                c2.flush().unwrap();
            }
            // ordering: Relaxed — the flag only widens the reconcile
            // window; the reader re-polls and the final state is fenced
            // by join. Downgraded from SeqCst in the PR-6 ordering audit.
            done.store(true, std::sync::atomic::Ordering::Relaxed);
        })
    };

    // Racing keys may or may not have landed in any given snapshot —
    // assert exactly that, every round.
    start.wait();
    let mut reconciles = 0u64;
    let mut rounds_with_partial_prefix = 0u32;
    loop {
        let diff = c.reconcile(&client_set).unwrap();
        reconciles += 1;
        assert!(diff.complete, "mid-ingest reconcile must still decode");
        assert_eq!(diff.only_client, {
            let mut want = client_only.clone();
            want.sort_unstable();
            want
        });
        // only_server = the 500 planned keys plus whatever prefix of the
        // racing stream the snapshot epoch covered.
        let mut planned = 0;
        let mut racing_seen = 0;
        for k in &diff.only_server {
            if server_only.contains(k) {
                planned += 1;
            } else {
                assert!(racing.contains(k), "unexpected server-only key {k:#x}");
                racing_seen += 1;
            }
        }
        assert_eq!(planned, 500, "all planned server-only keys recovered");
        if racing_seen > 0 && racing_seen < racing.len() {
            rounds_with_partial_prefix += 1;
        }
        // Keep recoveries running for the whole ingest window, plus a
        // floor so the scheduler is exercised even if ingest wins the
        // race outright.
        // ordering: Relaxed — a stale read costs one extra reconcile
        // round, never correctness (see the store above).
        if done.load(std::sync::atomic::Ordering::Relaxed) && reconciles >= 3 {
            break;
        }
    }
    println!("{reconciles} reconcile rounds overlapped ingest ({rounds_with_partial_prefix} saw a partial racing prefix)");
    ingester.join().unwrap();
    c.flush().unwrap();

    // Final reconcile: the difference is exactly planned ∪ racing.
    let diff = c.reconcile(&client_set).unwrap();
    assert!(diff.complete);
    let mut want_server: Vec<u64> = server_only.iter().chain(racing.iter()).copied().collect();
    want_server.sort_unstable();
    assert_eq!(diff.only_server, want_server);
    let mut want_client = client_only;
    want_client.sort_unstable();
    assert_eq!(diff.only_client, want_client);
    assert!(diff.max_subrounds() > 0);

    // Ingest genuinely proceeded during the recovery window: the service
    // applied all 100 200 server-side ops across the 4 shards, and every
    // reconcile round ran 4 shard recoveries.
    let stats = c.stats().unwrap();
    assert_eq!(stats.ops_applied, 100_200);
    assert_eq!(stats.shards.len(), 4);
    assert!(stats.shards.iter().all(|s| s.epoch > 0));
    assert_eq!(stats.recoveries, (reconciles + 1) * 4);
    assert_eq!(stats.recoveries_incomplete, 0);
}
